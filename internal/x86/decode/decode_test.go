package decode

import (
	"math/rand"
	"reflect"
	"testing"

	"rocksalt/internal/grammar"
	"rocksalt/internal/x86"
)

func decodeOne(t *testing.T, code ...byte) (x86.Inst, int) {
	t.Helper()
	d := NewDecoder()
	inst, n, err := d.Decode(code)
	if err != nil {
		t.Fatalf("decode % x: %v", code, err)
	}
	return inst, n
}

func TestDecodeBasics(t *testing.T) {
	cases := []struct {
		code []byte
		want string
		len  int
	}{
		{[]byte{0x90}, "nop", 1},
		{[]byte{0x01, 0xd8}, "add eax, ebx", 2},
		{[]byte{0x29, 0xc8}, "sub eax, ecx", 2},
		{[]byte{0x31, 0xff}, "xor edi, edi", 2},
		{[]byte{0x83, 0xe0, 0xe0}, "and eax, 0xffffffe0", 3},
		{[]byte{0x25, 0xe0, 0xff, 0xff, 0xff}, "and eax, 0xffffffe0", 5},
		{[]byte{0xff, 0xe0}, "jmp eax", 2},
		{[]byte{0xff, 0xd1}, "call ecx", 2},
		{[]byte{0xc3}, "ret", 1},
		{[]byte{0x55}, "push ebp", 1},
		{[]byte{0x5d}, "pop ebp", 1},
		{[]byte{0x89, 0xe5}, "mov ebp, esp", 2},
		{[]byte{0xb8, 0x78, 0x56, 0x34, 0x12}, "mov eax, 0x12345678", 5},
		{[]byte{0x8b, 0x45, 0xfc}, "mov eax, [ebp+0xfffffffc]", 3},
		{[]byte{0x8b, 0x04, 0x24}, "mov eax, [esp]", 3},
		{[]byte{0x8d, 0x44, 0x88, 0x10}, "lea eax, [eax+ecx*4+0x10]", 4},
		{[]byte{0x0f, 0xaf, 0xc3}, "imul eax, ebx", 3},
		{[]byte{0xf7, 0xf9}, "idiv ecx", 2},
		{[]byte{0xd1, 0xe8}, "shr eax, 0x1", 2},
		{[]byte{0xc1, 0xe0, 0x05}, "shl eax, 0x5", 3},
		{[]byte{0xd3, 0xf8}, "sar eax, ecx", 2},
		{[]byte{0x0f, 0xb6, 0xc9}, "movzx ecx, ecx", 3},
		{[]byte{0x0f, 0x94, 0xc0}, "sete al", 3},
		{[]byte{0x0f, 0x44, 0xc1}, "cmove eax, ecx", 3},
		{[]byte{0x85, 0xc0}, "test eax, eax", 2},
		{[]byte{0xa8, 0x01}, "test al, 0x1", 2},
		{[]byte{0x66, 0x01, 0xd8}, "o16 add ax, bx", 3},
		{[]byte{0xf3, 0xa4}, "rep movs", 2},
		{[]byte{0xf0, 0x0f, 0xb1, 0x0b}, "lock cmpxchg [ebx], ecx", 4},
		{[]byte{0x64, 0x8b, 0x01}, "fs: mov eax, [ecx]", 3},
		{[]byte{0x74, 0x10}, "je 0x10", 2},
		{[]byte{0x0f, 0x85, 0x00, 0x01, 0x00, 0x00}, "jne 0x100", 6},
		{[]byte{0xe2, 0xfb}, "loop 0xfffffffb", 2},
		{[]byte{0xcd, 0x80}, "int 0x80", 2},
		{[]byte{0x0f, 0xc8}, "bswap eax", 2},
		{[]byte{0x99}, "cdq", 1},
		{[]byte{0xc9}, "leave", 1},
		{[]byte{0x0f, 0xa4, 0xd8, 0x04}, "shld eax, ebx, 0x4", 4},
		{[]byte{0x0f, 0xbc, 0xc2}, "bsf eax, edx", 3},
		{[]byte{0x0f, 0xab, 0xc8}, "bts eax, ecx", 3},
		{[]byte{0x8e, 0xd8}, "mov ds, eax", 2},
		{[]byte{0x8c, 0xd8}, "mov eax, ds", 2},
		{[]byte{0x1e}, "push ds", 1},
		{[]byte{0xea, 0x00, 0x10, 0x00, 0x00, 0x23, 0x00}, "jmp 0x1000", 7},
		{[]byte{0xc8, 0x20, 0x00, 0x00}, "enter 0x20, 0x0", 4},
		{[]byte{0x0f, 0xc7, 0x0b}, "cmpxchg8b [ebx]", 3},
		{[]byte{0x0f, 0x31}, "rdtsc", 2},
		{[]byte{0x0f, 0xa2}, "cpuid", 2},
		{[]byte{0x0f, 0x0b}, "ud2", 2},
		{[]byte{0x67, 0x8b, 0x00}, "a16 mov eax, [ebx+esi*1]", 3},
		{[]byte{0x67, 0x8b, 0x07}, "a16 mov eax, [ebx]", 3},
		{[]byte{0x67, 0x8b, 0x46, 0xfc}, "a16 mov eax, [ebp+0xfffc]", 4},
		{[]byte{0x67, 0x8b, 0x0e, 0x34, 0x12}, "a16 mov ecx, [0x1234]", 5},
		{[]byte{0x66, 0x67, 0x01, 0xd8}, "o16 a16 add ax, bx", 4},
	}
	for _, c := range cases {
		inst, n := decodeOne(t, c.code...)
		if got := inst.String(); got != c.want {
			t.Errorf("% x: got %q, want %q", c.code, got, c.want)
		}
		if n != c.len {
			t.Errorf("% x: consumed %d, want %d", c.code, n, c.len)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	bad := [][]byte{
		{0x67, 0x66, 0x01, 0xd8}, // prefixes out of canonical order
		{0x0f, 0x05},             // syscall (not IA-32 ring-3 subset)
		{0x82, 0xc0, 0x01},       // 0x82 alias excluded
		{0xd8, 0xc0},             // x87 not modeled
		{0x0f, 0x0c},             // unassigned 0F opcode
		{0xf1},                   // INT1 not modeled
		{0xc1, 0xf0, 0x05},       // shift group /6 undefined
		{},                       // empty
		{0xe8, 0x01, 0x02},       // truncated imm32
	}
	d := NewDecoder()
	for _, code := range bad {
		if inst, _, err := d.Decode(code); err == nil {
			t.Errorf("% x: decoded unexpectedly to %v", code, inst)
		}
	}
}

func TestDecodeRelativeAndFarMarkers(t *testing.T) {
	d := NewDecoder()
	inst, _, _ := d.Decode([]byte{0xe8, 0x10, 0, 0, 0})
	if !inst.Rel || inst.Far {
		t.Error("call rel32 must be marked Rel")
	}
	inst, _, _ = d.Decode([]byte{0xff, 0xd0})
	if inst.Rel || inst.Far {
		t.Error("call reg must be near indirect")
	}
	inst, _, _ = d.Decode([]byte{0x9a, 0, 0, 0, 0, 0x23, 0})
	if !inst.Far || inst.Sel != 0x23 {
		t.Error("far call must carry its selector")
	}
	inst, _, _ = d.Decode([]byte{0xcb})
	if inst.Op != x86.RET || !inst.Far {
		t.Error("retf must be far")
	}
}

func TestDecodeModRMCorners(t *testing.T) {
	d := NewDecoder()
	// [disp32] absolute.
	inst, n, err := d.Decode([]byte{0x8b, 0x05, 0x44, 0x33, 0x22, 0x11})
	if err != nil || n != 6 {
		t.Fatalf("decode abs: %v", err)
	}
	m := inst.Args[1].(x86.MemOp)
	if m.Addr.Disp != 0x11223344 || m.Addr.Base != nil || m.Addr.Index != nil {
		t.Errorf("abs addr wrong: %v", m)
	}
	// SIB with no base (disp32 + index*scale).
	inst, _, err = d.Decode([]byte{0x8b, 0x04, 0xcd, 0x10, 0x00, 0x00, 0x00})
	if err != nil {
		t.Fatal(err)
	}
	m = inst.Args[1].(x86.MemOp)
	if m.Addr.Base != nil || m.Addr.Index == nil || *m.Addr.Index != x86.ECX || m.Addr.Scale != 8 || m.Addr.Disp != 0x10 {
		t.Errorf("sib-no-base wrong: %v", m)
	}
	// SIB with index=100 (none): scale bits ignored.
	inst, _, err = d.Decode([]byte{0x8b, 0x04, 0x24}) // mov eax, [esp]
	if err != nil {
		t.Fatal(err)
	}
	m = inst.Args[1].(x86.MemOp)
	if m.Addr.Base == nil || *m.Addr.Base != x86.ESP || m.Addr.Index != nil {
		t.Errorf("esp base wrong: %v", m)
	}
	// EBP base with mod=01 zero displacement.
	inst, _, err = d.Decode([]byte{0x8b, 0x45, 0x00})
	if err != nil {
		t.Fatal(err)
	}
	m = inst.Args[1].(x86.MemOp)
	if m.Addr.Base == nil || *m.Addr.Base != x86.EBP || m.Addr.Disp != 0 {
		t.Errorf("ebp+0 wrong: %v", m)
	}
	// mod=10 disp32 with SIB and EBP base.
	inst, _, err = d.Decode([]byte{0x8b, 0x84, 0x8d, 0x00, 0x01, 0x00, 0x00})
	if err != nil {
		t.Fatal(err)
	}
	m = inst.Args[1].(x86.MemOp)
	if m.Addr.Base == nil || *m.Addr.Base != x86.EBP || m.Addr.Index == nil || *m.Addr.Index != x86.ECX ||
		m.Addr.Scale != 4 || m.Addr.Disp != 0x100 {
		t.Errorf("full sib wrong: %v", m)
	}
}

// TestGenerativeRoundTrip is the paper's fuzzing loop (§2.5): sample byte
// sequences from the generative grammar together with their semantic
// values, and check the decoder reproduces exactly those values.
func TestGenerativeRoundTrip(t *testing.T) {
	s := grammar.NewSampler(rand.New(rand.NewSource(2024)))
	top := TopGrammar()
	d := NewDecoder()
	trials := 4000
	if testing.Short() {
		trials = 400
	}
	for i := 0; i < trials; i++ {
		bs, v, ok := s.SampleBytes(top, 4)
		if !ok {
			t.Fatal("sampler failed on instruction grammar")
		}
		want := v.(x86.Inst)
		got, n, err := d.Decode(bs)
		if err != nil {
			t.Fatalf("sampled % x (%v) does not decode: %v", bs, want, err)
		}
		if n != len(bs) {
			t.Fatalf("sampled % x: decoded %d of %d bytes (prefix ambiguity?)", bs, n, len(bs))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sampled % x: decoded %#v, want %#v", bs, got, want)
		}
	}
}

func TestNumEncodingForms(t *testing.T) {
	if n := NumEncodingForms(); n < 130 {
		t.Errorf("only %d encoding forms; the paper's model parses over 130", n)
	} else {
		t.Logf("decoder grammar has %d encoding forms", n)
	}
}

func TestDecoderCacheConsistency(t *testing.T) {
	// Decoding the same bytes twice (second time through the trie cache)
	// must give identical results.
	d := NewDecoder()
	code := []byte{0x8b, 0x44, 0x8a, 0x04}
	a, n1, err1 := d.Decode(code)
	b, n2, err2 := d.Decode(code)
	if err1 != nil || err2 != nil || n1 != n2 || !reflect.DeepEqual(a, b) {
		t.Fatalf("cache inconsistency: %v/%v %d/%d %v/%v", a, b, n1, n2, err1, err2)
	}
}

func TestDecodeAll(t *testing.T) {
	d := NewDecoder()
	code := []byte{0x90, 0xd8, 0x01, 0xd8, 0xc3} // nop, junk(x87), add, ret
	out := d.DecodeAll(code)
	if len(out) != 4 {
		t.Fatalf("DecodeAll entries = %d, want 4: %v", len(out), out)
	}
	if out[0].Inst.Op != x86.NOP || out[0].Len != 1 {
		t.Fatal("first entry wrong")
	}
	if out[1].Err == nil || out[1].Len != 1 {
		t.Fatal("junk byte must be a one-byte gap")
	}
	if out[2].Inst.Op != x86.ADD || out[2].Off != 2 || out[2].Len != 2 {
		t.Fatalf("resync failed: %+v", out[2])
	}
	if out[3].Inst.Op != x86.RET {
		t.Fatal("final ret missing")
	}
	// Offsets tile the input exactly.
	pos := 0
	for _, e := range out {
		if e.Off != pos {
			t.Fatalf("offset gap at %d", pos)
		}
		pos += e.Len
	}
	if pos != len(code) {
		t.Fatal("entries must cover the input")
	}
	if got := d.DecodeAll(nil); len(got) != 0 {
		t.Fatal("empty input decodes to nothing")
	}
}

package decode

import (
	"rocksalt/internal/grammar"
	"rocksalt/internal/x86"
)

// This file implements the 16-bit addressing forms of ModRM (selected by
// the 0x67 address-size prefix): the register-pair effective addresses of
// the 8086 — BX+SI, BP+DI, ... — encoded in the rm field. The NaCl policy
// rejects the prefix, but the model decodes and executes it; effective
// addresses wrap at 64 KiB (see semantics.effAddr).

// rm16Pair maps an rm code to its base/index pair (nil = absent).
// rm=110 under mod=00 is the bare disp16 form and is handled separately.
var rm16Pair = [8]struct{ base, index *x86.Reg }{
	0: {regPtr(x86.EBX), regPtr(x86.ESI)}, // [BX+SI]
	1: {regPtr(x86.EBX), regPtr(x86.EDI)}, // [BX+DI]
	2: {regPtr(x86.EBP), regPtr(x86.ESI)}, // [BP+SI]
	3: {regPtr(x86.EBP), regPtr(x86.EDI)}, // [BP+DI]
	4: {regPtr(x86.ESI), nil},             // [SI]
	5: {regPtr(x86.EDI), nil},             // [DI]
	6: {regPtr(x86.EBP), nil},             // [BP] (mod 01/10 only)
	7: {regPtr(x86.EBX), nil},             // [BX]
}

// disp16 matches a 16-bit little-endian displacement (zero-extended; the
// 16-bit EA wraps modulo 2^16 anyway).
func disp16() *g {
	return grammar.Map(grammar.Halfword(), func(v val) val { return uint32(v.(uint64)) })
}

// disp8x16 matches a byte displacement sign-extended to 16 bits.
func disp8x16() *g {
	return grammar.Map(grammar.AnyByte(), func(v val) val {
		return uint32(uint16(int16(int8(v.(uint64)))))
	})
}

func mem16(code uint64, disp uint32) val {
	p := rm16Pair[code&7]
	return x86.MemOp{Addr: x86.Addr{Disp: disp, Base: p.base, Index: p.index, Scale: 1}}
}

// rm16Mem00 matches the r/m field for mod=00 in 16-bit addressing.
func rm16Mem00() *g {
	var alts []*g
	for code := uint64(0); code < 8; code++ {
		if code == 6 {
			continue // [disp16]
		}
		c := code
		alts = append(alts, grammar.Map(grammar.BitsValue(3, c),
			func(val) val { return mem16(c, 0) }))
	}
	alts = append(alts, act(chain(grammar.Bits("110"), disp16()), func(vs []val) val {
		return x86.MemOp{Addr: x86.Addr{Disp: vs[0].(uint32)}}
	}))
	return grammar.Alt(alts...)
}

// rm16MemDisp matches the r/m field for mod=01/10 with the given
// displacement grammar.
func rm16MemDisp(disp *g) *g {
	var alts []*g
	for code := uint64(0); code < 8; code++ {
		c := code
		alts = append(alts, act(chain(grammar.BitsValue(3, c), disp), func(vs []val) val {
			return mem16(c, vs[0].(uint32))
		}))
	}
	return grammar.Alt(alts...)
}

// modrm16WithReg is the 16-bit analogue of modrmWithReg.
func modrm16WithReg(regG *g, memOnly bool) *g {
	regVal := func(vs []val) uint64 {
		if len(vs) == 0 {
			return 0
		}
		if r, ok := vs[0].(uint64); ok {
			return r
		}
		return 0
	}
	mk := func(vs []val, op x86.Operand) val {
		return modrmVal{reg: regVal(vs), op: op}
	}
	alts := []*g{
		act(chain(grammar.Bits("00"), regG, rm16Mem00()), func(vs []val) val {
			return mk(vs[:len(vs)-1], vs[len(vs)-1].(x86.MemOp))
		}),
		act(chain(grammar.Bits("01"), regG, rm16MemDisp(disp8x16())), func(vs []val) val {
			return mk(vs[:len(vs)-1], vs[len(vs)-1].(x86.MemOp))
		}),
		act(chain(grammar.Bits("10"), regG, rm16MemDisp(disp16())), func(vs []val) val {
			return mk(vs[:len(vs)-1], vs[len(vs)-1].(x86.MemOp))
		}),
	}
	if !memOnly {
		alts = append(alts, act(chain(grammar.Bits("11"), regG, reg3()), func(vs []val) val {
			return mk(vs[:len(vs)-1], x86.RegOp{Reg: vs[len(vs)-1].(x86.Reg)})
		}))
	}
	return grammar.Alt(alts...)
}

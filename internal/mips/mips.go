// Package mips reproduces the paper's architecture-independence claim:
// "the tools are architecture independent and can thus be re-used to
// specify the semantics of other machine architectures. For example, one
// of the undergraduate co-authors constructed a model of the MIPS
// architecture using our DSLs in just a few days."
//
// The package reuses internal/grammar for the decoder (MIPS words are
// fixed 32-bit, big-endian, field-structured — a much easier grammar than
// the x86's) and internal/rtl for the semantics, instantiated at a MIPS
// machine state.
package mips

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rocksalt/internal/bits"
	"rocksalt/internal/grammar"
	"rocksalt/internal/rtl"
)

// Op is a MIPS mnemonic.
type Op uint8

// Supported MIPS instructions.
const (
	BAD Op = iota
	ADDU
	SUBU
	AND
	OR
	XOR
	NOR
	SLT
	SLTU
	SLL
	SRL
	SRA
	JR
	ADDIU
	SLTI
	ANDI
	ORI
	XORI
	LUI
	LW
	SW
	LB
	LBU
	SB
	BEQ
	BNE
	J
	JAL
	NumOps
)

var opNames = [...]string{
	"bad", "addu", "subu", "and", "or", "xor", "nor", "slt", "sltu",
	"sll", "srl", "sra", "jr", "addiu", "slti", "andi", "ori", "xori",
	"lui", "lw", "sw", "lb", "lbu", "sb", "beq", "bne", "j", "jal",
}

func (o Op) String() string { return opNames[o] }

// Inst is a decoded MIPS instruction.
type Inst struct {
	Op         Op
	RS, RT, RD uint8  // register fields
	Shamt      uint8  // shift amount
	Imm        uint16 // I-type immediate
	Target     uint32 // J-type target (26 bits)
}

func (i Inst) String() string {
	switch {
	case i.Op == J || i.Op == JAL:
		return fmt.Sprintf("%s %#x", i.Op, i.Target<<2)
	case i.Op == JR:
		return fmt.Sprintf("jr $%d", i.RS)
	case i.Op == SLL || i.Op == SRL || i.Op == SRA:
		return fmt.Sprintf("%s $%d, $%d, %d", i.Op, i.RD, i.RT, i.Shamt)
	case i.Op >= ADDIU && i.Op <= SB:
		return fmt.Sprintf("%s $%d, $%d, %#x", i.Op, i.RT, i.RS, i.Imm)
	case i.Op == BEQ || i.Op == BNE:
		return fmt.Sprintf("%s $%d, $%d, %d", i.Op, i.RS, i.RT, int16(i.Imm))
	default:
		return fmt.Sprintf("%s $%d, $%d, $%d", i.Op, i.RD, i.RS, i.RT)
	}
}

type g = grammar.Grammar

// field helpers over the 32-bit big-endian word.
func reg5() *g { return grammar.Field(5) }

// rType builds "000000 rs rt rd shamt FUNCT".
func rType(funct uint64, op Op) *g {
	return grammar.Map(
		grammar.Cat(grammar.Bits("000000"),
			grammar.Cat(reg5(),
				grammar.Cat(reg5(),
					grammar.Cat(reg5(),
						grammar.Cat(grammar.Field(5), grammar.BitsValue(6, funct)))))),
		func(v grammar.Value) grammar.Value {
			p := v.(grammar.Pair).Snd.(grammar.Pair)
			rs := p.Fst.(uint64)
			p = p.Snd.(grammar.Pair)
			rt := p.Fst.(uint64)
			p = p.Snd.(grammar.Pair)
			rd := p.Fst.(uint64)
			shamt := p.Snd.(grammar.Pair).Fst.(uint64)
			return Inst{Op: op, RS: uint8(rs), RT: uint8(rt), RD: uint8(rd), Shamt: uint8(shamt)}
		})
}

// iType builds "OPCODE rs rt imm16".
func iType(opcode uint64, op Op) *g {
	return grammar.Map(
		grammar.Cat(grammar.BitsValue(6, opcode),
			grammar.Cat(reg5(), grammar.Cat(reg5(), grammar.Field(16)))),
		func(v grammar.Value) grammar.Value {
			p := v.(grammar.Pair).Snd.(grammar.Pair)
			rs := p.Fst.(uint64)
			p = p.Snd.(grammar.Pair)
			rt := p.Fst.(uint64)
			imm := p.Snd.(uint64)
			return Inst{Op: op, RS: uint8(rs), RT: uint8(rt), Imm: uint16(imm)}
		})
}

// jType builds "OPCODE target26".
func jType(opcode uint64, op Op) *g {
	return grammar.Map(
		grammar.Cat(grammar.BitsValue(6, opcode), grammar.Field(26)),
		func(v grammar.Value) grammar.Value {
			return Inst{Op: op, Target: uint32(v.(grammar.Pair).Snd.(uint64))}
		})
}

var (
	grammarOnce sync.Once
	grammarG    *g
)

// Grammar is the full MIPS decode grammar (built once and shared;
// grammars are immutable).
func Grammar() *g {
	grammarOnce.Do(func() { grammarG = buildGrammar() })
	return grammarG
}

func buildGrammar() *g {
	return grammar.Alt(
		rType(0x21, ADDU), rType(0x23, SUBU), rType(0x24, AND),
		rType(0x25, OR), rType(0x26, XOR), rType(0x27, NOR),
		rType(0x2a, SLT), rType(0x2b, SLTU),
		rType(0x00, SLL), rType(0x02, SRL), rType(0x03, SRA),
		rType(0x08, JR),
		iType(0x09, ADDIU), iType(0x0a, SLTI), iType(0x0c, ANDI),
		iType(0x0d, ORI), iType(0x0e, XORI), iType(0x0f, LUI),
		iType(0x23, LW), iType(0x2b, SW), iType(0x20, LB),
		iType(0x24, LBU), iType(0x28, SB),
		iType(0x04, BEQ), iType(0x05, BNE),
		jType(0x02, J), jType(0x03, JAL),
	)
}

// decodeCache memoizes word → instruction: a MIPS word determines its
// decoding, and programs reuse few distinct words.
var decodeCache sync.Map // uint32 → Inst

const decodeCacheMax = 1 << 16

var decodeCacheSize int64

// Decode decodes one big-endian instruction word.
func Decode(word []byte) (Inst, error) {
	if len(word) < 4 {
		return Inst{}, fmt.Errorf("mips: truncated word")
	}
	key := uint32(word[0])<<24 | uint32(word[1])<<16 | uint32(word[2])<<8 | uint32(word[3])
	if v, ok := decodeCache.Load(key); ok {
		return v.(Inst), nil
	}
	v, n, err := grammar.ParseBytes(Grammar(), word[:4], 4)
	if err != nil {
		return Inst{}, fmt.Errorf("mips: %w", err)
	}
	if n != 4 {
		return Inst{}, fmt.Errorf("mips: decoded %d bytes", n)
	}
	inst := v.(Inst)
	if atomic.AddInt64(&decodeCacheSize, 1) <= decodeCacheMax {
		decodeCache.Store(key, inst)
	}
	return inst, nil
}

// ---------- Machine state ----------

// RegLoc addresses one of the 32 general registers.
type RegLoc uint8

// PCLoc addresses the program counter.
type PCLoc struct{}

// Width implements rtl.Loc.
func (RegLoc) Width() int { return 32 }

// Width implements rtl.Loc.
func (PCLoc) Width() int { return 32 }

func (l RegLoc) String() string { return fmt.Sprintf("$%d", uint8(l)) }
func (PCLoc) String() string    { return "pc" }

// State is the MIPS machine state: 32 registers ($0 wired to zero), PC,
// and byte memory.
type State struct {
	Regs [32]uint32
	PC   uint32
	Mem  map[uint32]byte
}

// NewState returns a zeroed machine.
func NewState() *State { return &State{Mem: make(map[uint32]byte)} }

var _ rtl.Machine = (*State)(nil)

// Get implements rtl.Machine.
func (s *State) Get(loc rtl.Loc) bits.Vec {
	switch l := loc.(type) {
	case RegLoc:
		return bits.New(32, uint64(s.Regs[l&31]))
	case PCLoc:
		return bits.New(32, uint64(s.PC))
	}
	panic("mips: unknown location")
}

// Set implements rtl.Machine; writes to $0 are discarded.
func (s *State) Set(loc rtl.Loc, v bits.Vec) {
	switch l := loc.(type) {
	case RegLoc:
		if l&31 != 0 {
			s.Regs[l&31] = uint32(v.Uint64())
		}
		return
	case PCLoc:
		s.PC = uint32(v.Uint64())
		return
	}
	panic("mips: unknown location")
}

// LoadByte implements rtl.Machine.
func (s *State) LoadByte(a uint32) byte { return s.Mem[a] }

// StoreByte implements rtl.Machine.
func (s *State) StoreByte(a uint32, b byte) { s.Mem[a] = b }

// ---------- Translation to RTL ----------

// Translate compiles a MIPS instruction at pc to RTL (delay slots are not
// modeled; branches take effect immediately, MIPS32r6-style).
func Translate(i Inst, pc uint32) ([]rtl.Instr, error) {
	b := rtl.NewBuilder()
	next := pc + 4
	fall := func() { b.Set(PCLoc{}, b.ImmU(32, uint64(next))) }
	rs := func() rtl.Var { return b.Get(RegLoc(i.RS)) }
	rt := func() rtl.Var { return b.Get(RegLoc(i.RT)) }
	setRD := func(v rtl.Var) { b.Set(RegLoc(i.RD), v) }
	setRT := func(v rtl.Var) { b.Set(RegLoc(i.RT), v) }
	immS := func() rtl.Var { return b.Imm(bits.FromInt64(32, int64(int16(i.Imm)))) }
	immU := func() rtl.Var { return b.ImmU(32, uint64(i.Imm)) }

	switch i.Op {
	case ADDU:
		setRD(b.Arith(rtl.Add, rs(), rt()))
		fall()
	case SUBU:
		setRD(b.Arith(rtl.Sub, rs(), rt()))
		fall()
	case AND:
		setRD(b.Arith(rtl.And, rs(), rt()))
		fall()
	case OR:
		setRD(b.Arith(rtl.Or, rs(), rt()))
		fall()
	case XOR:
		setRD(b.Arith(rtl.Xor, rs(), rt()))
		fall()
	case NOR:
		or := b.Arith(rtl.Or, rs(), rt())
		setRD(b.Arith(rtl.Xor, or, b.Imm(bits.AllOnes(32))))
		fall()
	case SLT:
		setRD(b.CastU(32, b.Test(rtl.LtS, rs(), rt())))
		fall()
	case SLTU:
		setRD(b.CastU(32, b.Test(rtl.LtU, rs(), rt())))
		fall()
	case SLL:
		setRD(b.Arith(rtl.Shl, rt(), b.ImmU(32, uint64(i.Shamt))))
		fall()
	case SRL:
		setRD(b.Arith(rtl.ShrU, rt(), b.ImmU(32, uint64(i.Shamt))))
		fall()
	case SRA:
		setRD(b.Arith(rtl.ShrS, rt(), b.ImmU(32, uint64(i.Shamt))))
		fall()
	case JR:
		b.Set(PCLoc{}, rs())
	case ADDIU:
		setRT(b.Arith(rtl.Add, rs(), immS()))
		fall()
	case SLTI:
		setRT(b.CastU(32, b.Test(rtl.LtS, rs(), immS())))
		fall()
	case ANDI:
		setRT(b.Arith(rtl.And, rs(), immU()))
		fall()
	case ORI:
		setRT(b.Arith(rtl.Or, rs(), immU()))
		fall()
	case XORI:
		setRT(b.Arith(rtl.Xor, rs(), immU()))
		fall()
	case LUI:
		setRT(b.ImmU(32, uint64(i.Imm)<<16))
		fall()
	case LW:
		addr := b.Arith(rtl.Add, rs(), immS())
		setRT(b.LoadBytes(32, addr))
		fall()
	case SW:
		addr := b.Arith(rtl.Add, rs(), immS())
		b.StoreBytes(addr, rt())
		fall()
	case LB:
		addr := b.Arith(rtl.Add, rs(), immS())
		setRT(b.CastS(32, b.LoadBytes(8, addr)))
		fall()
	case LBU:
		addr := b.Arith(rtl.Add, rs(), immS())
		setRT(b.CastU(32, b.LoadBytes(8, addr)))
		fall()
	case SB:
		addr := b.Arith(rtl.Add, rs(), immS())
		b.StoreBytes(addr, b.CastU(8, rt()))
		fall()
	case BEQ, BNE:
		taken := b.Test(rtl.Eq, rs(), rt())
		if i.Op == BNE {
			taken = b.Not1(taken)
		}
		target := next + uint32(int32(int16(i.Imm))<<2)
		b.Set(PCLoc{}, b.Mux(taken, b.ImmU(32, uint64(target)), b.ImmU(32, uint64(next))))
	case J, JAL:
		target := next&0xf0000000 | i.Target<<2
		if i.Op == JAL {
			b.Set(RegLoc(31), b.ImmU(32, uint64(next)))
		}
		b.Set(PCLoc{}, b.ImmU(32, uint64(target)))
	default:
		return nil, fmt.Errorf("mips: no translation for %v", i.Op)
	}
	return b.Take(), nil
}

// Step fetches, decodes, translates, executes one instruction.
func (s *State) Step() error {
	word := []byte{s.Mem[s.PC], s.Mem[s.PC+1], s.Mem[s.PC+2], s.Mem[s.PC+3]}
	inst, err := Decode(word)
	if err != nil {
		return err
	}
	prog, err := Translate(inst, s.PC)
	if err != nil {
		return err
	}
	return rtl.Exec(prog, rtl.NewState(s, nil))
}

// Run executes up to maxSteps instructions; it stops early (without
// error) on the conventional `jr $0` halt (PC = 0).
func (s *State) Run(maxSteps int) (int, error) {
	for i := 0; i < maxSteps; i++ {
		if err := s.Step(); err != nil {
			return i, err
		}
		if s.PC == 0 {
			return i + 1, nil
		}
	}
	return maxSteps, nil
}

// Assemble encodes an instruction to its big-endian word (the test
// round-trip partner).
func Assemble(i Inst) uint32 {
	switch i.Op {
	case ADDU, SUBU, AND, OR, XOR, NOR, SLT, SLTU, SLL, SRL, SRA, JR:
		funct := map[Op]uint32{
			ADDU: 0x21, SUBU: 0x23, AND: 0x24, OR: 0x25, XOR: 0x26,
			NOR: 0x27, SLT: 0x2a, SLTU: 0x2b, SLL: 0x00, SRL: 0x02,
			SRA: 0x03, JR: 0x08,
		}[i.Op]
		return uint32(i.RS)&31<<21 | uint32(i.RT)&31<<16 | uint32(i.RD)&31<<11 |
			uint32(i.Shamt)&31<<6 | funct
	case J, JAL:
		opc := uint32(0x02)
		if i.Op == JAL {
			opc = 0x03
		}
		return opc<<26 | i.Target&0x3ffffff
	default:
		opc := map[Op]uint32{
			ADDIU: 0x09, SLTI: 0x0a, ANDI: 0x0c, ORI: 0x0d, XORI: 0x0e,
			LUI: 0x0f, LW: 0x23, SW: 0x2b, LB: 0x20, LBU: 0x24, SB: 0x28,
			BEQ: 0x04, BNE: 0x05,
		}[i.Op]
		return opc<<26 | uint32(i.RS)&31<<21 | uint32(i.RT)&31<<16 | uint32(i.Imm)
	}
}

// StoreWord writes a big-endian instruction word into memory.
func (s *State) StoreWord(addr, word uint32) {
	s.Mem[addr] = byte(word >> 24)
	s.Mem[addr+1] = byte(word >> 16)
	s.Mem[addr+2] = byte(word >> 8)
	s.Mem[addr+3] = byte(word)
}

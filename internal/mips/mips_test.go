package mips

import (
	"math/rand"
	"testing"

	"rocksalt/internal/grammar"
)

func word(w uint32) []byte {
	return []byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
}

func TestDecodeKnown(t *testing.T) {
	cases := []struct {
		w    uint32
		want string
	}{
		{0x01094021, "addu $8, $8, $9"},   // addu $t0, $t0, $t1
		{0x25080004, "addiu $8, $8, 0x4"}, // addiu $t0, $t0, 4
		{0x8d090000, "lw $9, $8, 0x0"},
		{0xad090000, "sw $9, $8, 0x0"},
		{0x3c011234, "lui $1, $0, 0x1234"},
		{0x1109fffe, "beq $8, $9, -2"},
		{0x08000010, "j 0x40"},
		{0x0c000010, "jal 0x40"},
		{0x01000008, "jr $8"},
		{0x00084080, "sll $8, $8, 2"},
	}
	for _, c := range cases {
		inst, err := Decode(word(c.w))
		if err != nil {
			t.Errorf("%#08x: %v", c.w, err)
			continue
		}
		if got := inst.String(); got != c.want {
			t.Errorf("%#08x: got %q, want %q", c.w, got, c.want)
		}
	}
}

func TestDecodeRejectsUnknown(t *testing.T) {
	// Opcode 0x3f is not in the modeled subset.
	if _, err := Decode(word(0xfc000000)); err == nil {
		t.Fatal("unknown opcode must fail")
	}
	if _, err := Decode([]byte{0x01}); err == nil {
		t.Fatal("short word must fail")
	}
}

func TestAssembleDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ops := []Op{ADDU, SUBU, AND, OR, XOR, NOR, SLT, SLTU, SLL, SRL, SRA, JR,
		ADDIU, SLTI, ANDI, ORI, XORI, LUI, LW, SW, LB, LBU, SB, BEQ, BNE, J, JAL}
	for i := 0; i < 2000; i++ {
		in := Inst{
			Op:     ops[rng.Intn(len(ops))],
			RS:     uint8(rng.Intn(32)),
			RT:     uint8(rng.Intn(32)),
			RD:     uint8(rng.Intn(32)),
			Shamt:  uint8(rng.Intn(32)),
			Imm:    uint16(rng.Intn(1 << 16)),
			Target: uint32(rng.Intn(1 << 26)),
		}
		// Normalize fields the encoding does not carry.
		switch in.Op {
		case ADDU, SUBU, AND, OR, XOR, NOR, SLT, SLTU:
			in.Imm, in.Target = 0, 0
		case SLL, SRL, SRA:
			in.Imm, in.Target = 0, 0
		case JR:
			in.Imm, in.Target = 0, 0
		case J, JAL:
			in.RS, in.RT, in.RD, in.Shamt, in.Imm = 0, 0, 0, 0, 0
		default:
			in.RD, in.Shamt, in.Target = 0, 0, 0
		}
		got, err := Decode(word(Assemble(in)))
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if got != in {
			t.Fatalf("round trip: %v -> %v", in, got)
		}
	}
}

func TestGrammarUnambiguous(t *testing.T) {
	ctx := grammar.NewCtx()
	if err := grammar.CheckUnambiguous(ctx, Grammar()); err != nil {
		t.Fatalf("MIPS grammar ambiguous: %v", err)
	}
}

func TestZeroRegisterWiredToZero(t *testing.T) {
	s := NewState()
	s.StoreWord(0, Assemble(Inst{Op: ADDIU, RS: 0, RT: 0, Imm: 42})) // addiu $0,$0,42
	s.StoreWord(4, Assemble(Inst{Op: ADDIU, RS: 0, RT: 8, Imm: 7}))  // addiu $t0,$0,7
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if s.Regs[0] != 0 {
		t.Fatal("$0 must stay zero")
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if s.Regs[8] != 7 {
		t.Fatalf("$t0 = %d", s.Regs[8])
	}
}

// TestSumLoop runs a small program: sum 1..10 into $t2.
func TestSumLoop(t *testing.T) {
	s := NewState()
	pc := uint32(0x1000)
	prog := []Inst{
		{Op: ADDIU, RS: 0, RT: 8, Imm: 10}, // $t0 = 10
		{Op: ADDIU, RS: 0, RT: 10, Imm: 0}, // $t2 = 0
		// loop:
		{Op: ADDU, RS: 10, RT: 8, RD: 10},      // $t2 += $t0
		{Op: ADDIU, RS: 8, RT: 8, Imm: 0xffff}, // $t0 -= 1
		{Op: BNE, RS: 8, RT: 0, Imm: 0xfffd},   // bne $t0,$0,-3
		{Op: JR, RS: 0},                        // jr $0 (halt convention)
	}
	for i, in := range prog {
		s.StoreWord(pc+uint32(i*4), Assemble(in))
	}
	s.PC = pc
	steps, err := s.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Regs[10] != 55 {
		t.Fatalf("sum = %d after %d steps", s.Regs[10], steps)
	}
}

func TestMemoryOps(t *testing.T) {
	s := NewState()
	pc := uint32(0)
	prog := []Inst{
		{Op: LUI, RT: 8, Imm: 0x1234},        // $t0 = 0x12340000
		{Op: ORI, RS: 8, RT: 8, Imm: 0x5678}, // $t0 |= 0x5678
		{Op: SW, RS: 0, RT: 8, Imm: 0x100},   // mem[0x100] = $t0
		{Op: LW, RS: 0, RT: 9, Imm: 0x100},   // $t1 = mem[0x100]
		{Op: LB, RS: 0, RT: 10, Imm: 0x103},  // $t2 = signed byte
		{Op: LBU, RS: 0, RT: 11, Imm: 0x103},
	}
	for i, in := range prog {
		s.StoreWord(pc+uint32(i*4), Assemble(in))
	}
	for range prog {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Regs[9] != 0x12345678 {
		t.Fatalf("$t1 = %#x", s.Regs[9])
	}
	// Little-endian data memory: byte 3 of the stored word is 0x12.
	if s.Regs[10] != 0x12 || s.Regs[11] != 0x12 {
		t.Fatalf("byte loads: %#x %#x", s.Regs[10], s.Regs[11])
	}
}

func TestJalAndJr(t *testing.T) {
	s := NewState()
	// 0x0: jal 0x20; 0x20: addiu $t0,$0,9; jr $31
	s.StoreWord(0, Assemble(Inst{Op: JAL, Target: 0x20 >> 2}))
	s.StoreWord(0x20, Assemble(Inst{Op: ADDIU, RS: 0, RT: 8, Imm: 9}))
	s.StoreWord(0x24, Assemble(Inst{Op: JR, RS: 31}))
	for i := 0; i < 3; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Regs[31] != 4 {
		t.Fatalf("$ra = %#x", s.Regs[31])
	}
	if s.Regs[8] != 9 || s.PC != 4 {
		t.Fatalf("jal/jr wrong: $t0=%d pc=%#x", s.Regs[8], s.PC)
	}
}

func TestGenerativeFuzzMips(t *testing.T) {
	// The same grammar fuzz loop as for the x86: sample, decode, compare.
	samp := grammar.NewSampler(rand.New(rand.NewSource(3)))
	g := Grammar()
	for i := 0; i < 2000; i++ {
		bs, v, ok := samp.SampleBytes(g, 4)
		if !ok {
			t.Fatal("sample failed")
		}
		want := v.(Inst)
		got, err := Decode(bs)
		if err != nil {
			t.Fatalf("% x: %v", bs, err)
		}
		if got != want {
			t.Fatalf("% x: %v vs %v", bs, got, want)
		}
	}
}

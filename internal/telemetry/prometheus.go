package telemetry

import (
	"fmt"
	"io"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Histograms are exported with
// cumulative power-of-two `le` buckets plus the implicit +Inf bucket,
// `_sum` and `_count` series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, e := range f.entries {
			var err error
			switch {
			case e.c != nil:
				err = writeSeries(w, f.name, e.labels, e.c.Value())
			case e.g != nil:
				err = writeSeries(w, f.name, e.labels, e.g.Value())
			case e.h != nil:
				err = writeHistogram(w, f.name, e.labels, e.h)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name, labels string, v int64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %d\n", name, v)
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
	return err
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	// A labeled histogram merges its label set into every series: the
	// bucket lines get `labels,le=...` and sum/count get `{labels}`.
	le := "le="
	if labels != "" {
		le = labels + ",le="
	}
	var sumCount string
	if labels != "" {
		sumCount = "{" + labels + "}"
	}
	// Bucket b holds v < 2^b, so the cumulative le bound of bucket b is
	// 2^b - 1 in integer terms; Prometheus wants float bounds, and 2^b
	// is exact in a float64 for every b we use.
	cum := int64(0)
	for b := 0; b < histBuckets; b++ {
		n := h.buckets[b].Load()
		if n == 0 && b > 0 {
			continue // sparse exposition: skip empty interior buckets
		}
		cum += n
		if _, err := fmt.Fprintf(w, "%s_bucket{%s\"%g\"} %d\n", name, le, pow2(b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s\"+Inf\"} %d\n", name, le, h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", name, sumCount, h.Sum(), name, sumCount, h.Count()); err != nil {
		return err
	}
	return nil
}

func pow2(b int) float64 {
	v := 1.0
	for i := 0; i < b; i++ {
		v *= 2
	}
	return v
}

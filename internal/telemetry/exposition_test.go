package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestGaugeStoreBypassesGate pins the Store contract: unlike Set, it
// writes regardless of the enable gate, so identity gauges (build_info)
// registered before SetEnabled are scrapeable immediately.
func TestGaugeStoreBypassesGate(t *testing.T) {
	prev := Enabled()
	SetEnabled(false)
	t.Cleanup(func() { SetEnabled(prev) })
	r := NewRegistry()
	g := r.NewGauge("test_store_info", "store test")
	g.Set(7)
	if g.Value() != 0 {
		t.Fatalf("gated Set wrote while disabled: %d", g.Value())
	}
	g.Store(1)
	if g.Value() != 1 {
		t.Fatalf("Store invisible while disabled: %d", g.Value())
	}
}

// TestLabeledGaugeExposition covers the multi-pair label path used by
// rocksalt_build_info: several label pairs render in order, and the
// value escaping survives a scrape — quote, backslash and newline are
// exactly the characters the Prometheus text format requires escaped.
func TestLabeledGaugeExposition(t *testing.T) {
	r := NewRegistry()
	g := r.NewLabeledGauge("test_build_info", "identity",
		"bundle", "RSLT3",
		"policy", `sha"with\quirks`+"\n",
		"go", "go1.24")
	g.Store(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	want := `test_build_info{bundle="RSLT3",policy="sha\"with\\quirks\n",go="go1.24"} 1`
	if !strings.Contains(text, want) {
		t.Errorf("exposition missing %q:\n%s", want, text)
	}
	if v, ok := r.Value(`test_build_info{bundle="RSLT3",policy="sha\"with\\quirks\n",go="go1.24"}`); !ok || v != 1 {
		t.Errorf("Value lookup = %d,%v, want 1,true", v, ok)
	}
}

// TestRenderLabelsPanics pins the registration-time validation: label
// arguments must be non-empty (label, value) pairs.
func TestRenderLabelsPanics(t *testing.T) {
	for _, pairs := range [][]string{{}, {"only-label"}, {"a", "1", "dangling"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("renderLabels(%q) did not panic", pairs)
				}
			}()
			renderLabels(pairs)
		}()
	}
}

// TestLabeledHistogramExposition covers the labeled-histogram render
// path added for the per-stage/per-engine latency families: the label
// set merges into every bucket line ahead of le, and sum/count carry
// the label set too — and the numbers round-trip through the text.
func TestLabeledHistogramExposition(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	h1 := r.NewLabeledHistogram("test_stage_ns", "per stage", "stage", "stage1")
	h2 := r.NewLabeledHistogram("test_stage_ns", "per stage", "stage", "jumps")
	h1.Observe(3) // bucket 2, le 4
	h1.Observe(3)
	h2.Observe(100) // bucket 7, le 128
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`test_stage_ns_bucket{stage="stage1",le="4"} 2`,
		`test_stage_ns_bucket{stage="stage1",le="+Inf"} 2`,
		`test_stage_ns_sum{stage="stage1"} 6`,
		`test_stage_ns_count{stage="stage1"} 2`,
		`test_stage_ns_bucket{stage="jumps",le="128"} 1`,
		`test_stage_ns_sum{stage="jumps"} 100`,
		`test_stage_ns_count{stage="jumps"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "# TYPE test_stage_ns histogram") != 1 {
		t.Errorf("family must have exactly one TYPE line:\n%s", text)
	}
}

// TestPrometheusCumulativeBuckets verifies bucket counts are cumulative
// across the le bounds, per the exposition format, not per-bucket.
func TestPrometheusCumulativeBuckets(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	h := r.NewHistogram("test_cum_ns", "cumulative")
	h.Observe(1)   // bucket 1, le 2
	h.Observe(3)   // bucket 2, le 4
	h.Observe(100) // bucket 7, le 128
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`test_cum_ns_bucket{le="2"} 1`,
		`test_cum_ns_bucket{le="4"} 2`,
		`test_cum_ns_bucket{le="128"} 3`,
		`test_cum_ns_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestExpvarSnapshotShapes covers the /debug/vars render: unlabeled and
// labeled series keyed by full name, histograms as {count, sum}.
func TestExpvarSnapshotShapes(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.NewCounter("test_ev_total", "c").Add(4)
	r.NewLabeledGauge("test_ev_info", "g", "k", "v").Store(1)
	h := r.NewLabeledHistogram("test_ev_ns", "h", "stage", "s1")
	h.Observe(10)
	h.Observe(20)
	snap := r.expvarSnapshot()
	if got := snap["test_ev_total"]; got != int64(4) {
		t.Errorf("counter snapshot = %v, want 4", got)
	}
	if got := snap[`test_ev_info{k="v"}`]; got != int64(1) {
		t.Errorf("labeled gauge snapshot = %v, want 1", got)
	}
	hv, ok := snap[`test_ev_ns{stage="s1"}`].(map[string]int64)
	if !ok || hv["count"] != 2 || hv["sum"] != 30 {
		t.Errorf("histogram snapshot = %v, want {count:2 sum:30}", snap[`test_ev_ns{stage="s1"}`])
	}
}

// TestHandlerServesLabeledFamilies is the end-to-end scrape: the mux's
// /metrics endpoint carries the labeled histogram and gauge series with
// the Prometheus content type, and /debug/pprof/ serves its index.
func TestHandlerServesLabeledFamilies(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.NewLabeledGauge("test_srv_info", "identity", "bundle", "RSLT3").Store(1)
	r.NewLabeledHistogram("test_srv_ns", "latency", "engine", "swar").Observe(42)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{
		`test_srv_info{bundle="RSLT3"} 1`,
		`test_srv_ns_count{engine="swar"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	idx, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Body.Close()
	if idx.StatusCode != 200 {
		t.Errorf("/debug/pprof/ status = %d, want 200", idx.StatusCode)
	}

	vresp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
}

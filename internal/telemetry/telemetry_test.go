package telemetry

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func withEnabled(t *testing.T) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev) })
}

func TestCounterGate(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_gate_total", "gate test")
	SetEnabled(false)
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("disabled counter recorded: %d", c.Value())
	}
	withEnabled(t)
	c.Add(5)
	c.Add(2)
	if c.Value() != 7 {
		t.Fatalf("counter = %d, want 7", c.Value())
	}
	if v, ok := r.Value("test_gate_total"); !ok || v != 7 {
		t.Fatalf("Value lookup = %d,%v", v, ok)
	}
}

func TestHistogramBuckets(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	h := r.NewHistogram("test_latency_ns", "latency test")
	for _, v := range []int64{0, 1, 2, 3, 1000, 1 << 50} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	wantSum := int64(0 + 1 + 2 + 3 + 1000 + 1<<50)
	if h.Sum() != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
	// 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 1000 → bucket 10;
	// 1<<50 saturates into the last bucket.
	for b, want := range map[int]int64{0: 1, 1: 1, 2: 2, 10: 1, histBuckets - 1: 1} {
		if got := h.buckets[b].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", b, got, want)
		}
	}
}

func TestLabeledCounterFamily(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	a := r.NewLabeledCounter("test_violations_total", "by kind", "kind", "illegal")
	b := r.NewLabeledCounter("test_violations_total", "by kind", "kind", "straddle")
	a.Add(3)
	b.Add(1)
	if v, ok := r.Value(`test_violations_total{kind="illegal"}`); !ok || v != 3 {
		t.Fatalf("labeled lookup = %d,%v", v, ok)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if strings.Count(text, "# TYPE test_violations_total counter") != 1 {
		t.Errorf("family must have exactly one TYPE line:\n%s", text)
	}
	for _, want := range []string{
		`test_violations_total{kind="illegal"} 3`,
		`test_violations_total{kind="straddle"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestPrometheusHistogramExposition(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	h := r.NewHistogram("test_hist_ns", "hist")
	h.Observe(3) // bucket 2, le 4
	h.Observe(3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`test_hist_ns_bucket{le="4"} 2`,
		`test_hist_ns_bucket{le="+Inf"} 2`,
		"test_hist_ns_sum 6",
		"test_hist_ns_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.NewCounter("test_http_total", "http test").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var sb strings.Builder
		buf := make([]byte, 1<<16)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	if body := get("/metrics"); !strings.Contains(body, "test_http_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["rocksalt"]; !ok {
		t.Error("/debug/vars missing the rocksalt map")
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestRegionDisabledNoAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		end := Region(ctx, "test.region")
		end()
	})
	if allocs != 0 {
		t.Errorf("Region with tracing off allocated %.1f/op, want 0", allocs)
	}
}

func TestRunID(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if len(a) != 16 || a == b {
		t.Fatalf("run ids not unique 16-hex: %q %q", a, b)
	}
}

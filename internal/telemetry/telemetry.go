// Package telemetry is the engine's observability substrate: atomic
// counter/gauge/histogram primitives, a process-wide registry, and
// exporters for the Prometheus text format and expvar.
//
// The package is built around one invariant: when telemetry is
// disabled (the default), the record path is a single atomic load and
// a branch — no allocation, no lock, no clock read — so hot loops can
// leave their instrumentation calls in place unconditionally. When
// enabled, recording is one or two uncontended atomic adds; there is
// still no allocation on the record path, which is what lets the
// engine's zero-alloc guarantee survive with metrics on.
//
// Metrics are registered once, at package init time, against the
// Default registry; per-run statistics that must stay deterministic
// (core.Stats) are collected separately by the engine and only
// *published* here, so the registry never influences a verdict.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	mathbits "math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// on is the process-wide enable gate. All record paths check it first,
// so a disabled process pays one atomic load and a predictable branch
// per call site.
var on atomic.Bool

// SetEnabled turns global metric recording on or off. Reads (Value,
// exporters) work regardless, so a scrape after disabling still sees
// the final counts.
func SetEnabled(v bool) { on.Store(v) }

// Enabled reports whether global metric recording is on.
func Enabled() bool { return on.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n when telemetry is enabled.
func (c *Counter) Add(n int64) {
	if !on.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v when telemetry is enabled.
func (g *Gauge) Set(v int64) {
	if !on.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n when telemetry is enabled.
func (g *Gauge) Add(n int64) {
	if !on.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Store sets the gauge unconditionally, bypassing the enable gate. It
// exists for registration-time constants (build/config identity gauges
// set once, before or regardless of SetEnabled) — scrapes read the
// registry directly, so an ungated store is visible either way. Hot
// paths must keep using Set.
func (g *Gauge) Store(v int64) { g.v.Store(v) }

// histBuckets is the number of power-of-two histogram buckets: bucket
// b counts observations v with 2^(b-1) <= v < 2^b (bucket 0 counts
// v <= 0). 40 buckets cover 1 ns .. ~9 minutes of latency.
const histBuckets = 40

// Histogram is a fixed-bucket histogram with power-of-two bucket
// boundaries. Observing is bucket-index arithmetic plus three atomic
// adds; nothing allocates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (typically nanoseconds) when telemetry is
// enabled.
func (h *Histogram) Observe(v int64) {
	if !on.Load() {
		return
	}
	b := 0
	if v > 0 {
		b = mathbits.Len64(uint64(v))
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// metricEntry is one series inside a family: an optional label pair
// plus exactly one live primitive.
type metricEntry struct {
	labels string // rendered label set, e.g. `kind="illegal_instruction"`, or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing one metric name (and therefore one
// HELP/TYPE header in the Prometheus exposition).
type family struct {
	name, help, typ string
	entries         []*metricEntry
}

// Registry holds registered metrics. Registration happens at process
// init; the record path never touches the registry, so its mutex is
// scrape-time only.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry. Most code uses Default.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package registers
// its metrics against.
func Default() *Registry { return defaultRegistry }

func (r *Registry) familyFor(name, help, typ string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	return f
}

func (r *Registry) add(name, help, typ, labels string) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typ)
	for _, e := range f.entries {
		if e.labels == labels {
			panic(fmt.Sprintf("telemetry: duplicate metric %s{%s}", name, labels))
		}
	}
	e := &metricEntry{labels: labels}
	f.entries = append(f.entries, e)
	return e
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	e := r.add(name, help, "counter", "")
	e.c = &Counter{}
	return e.c
}

// NewLabeledCounter registers a counter carrying one label pair; all
// counters sharing name form one family in the exposition.
func (r *Registry) NewLabeledCounter(name, help, label, value string) *Counter {
	e := r.add(name, help, "counter", fmt.Sprintf("%s=%q", label, value))
	e.c = &Counter{}
	return e.c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	e := r.add(name, help, "gauge", "")
	e.g = &Gauge{}
	return e.g
}

// NewLabeledGauge registers a gauge carrying one or more label pairs
// (alternating label, value arguments); all gauges sharing name form
// one family in the exposition.
func (r *Registry) NewLabeledGauge(name, help string, labelPairs ...string) *Gauge {
	e := r.add(name, help, "gauge", renderLabels(labelPairs))
	e.g = &Gauge{}
	return e.g
}

// NewHistogram registers and returns a power-of-two-bucket histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	e := r.add(name, help, "histogram", "")
	e.h = &Histogram{}
	return e.h
}

// NewLabeledHistogram registers a histogram carrying one label pair;
// all histograms sharing name form one family in the exposition, with
// the label merged into every bucket/sum/count series.
func (r *Registry) NewLabeledHistogram(name, help, label, value string) *Histogram {
	e := r.add(name, help, "histogram", fmt.Sprintf("%s=%q", label, value))
	e.h = &Histogram{}
	return e.h
}

// renderLabels renders alternating label, value pairs in the
// Prometheus text form (`k1="v1",k2="v2"`). %q escaping matches the
// exposition format's: backslash, double quote and newline are the
// characters that need escaping, and Go quotes all three.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		panic(fmt.Sprintf("telemetry: labels must be non-empty (label, value) pairs, got %d strings", len(pairs)))
	}
	var b []byte
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, fmt.Sprintf("%s=%q", pairs[i], pairs[i+1])...)
	}
	return string(b)
}

// Value looks a series up by its full name — `name` for unlabeled
// series, `name{label="value"}` for labeled ones — and returns its
// current value (the observation count for histograms). Tests use it
// to assert on metrics without holding the primitive.
func (r *Registry) Value(full string) (int64, bool) {
	name, labels := full, ""
	if i := indexByte(full, '{'); i >= 0 {
		name = full[:i]
		labels = full[i+1 : len(full)-1]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		return 0, false
	}
	for _, e := range f.entries {
		if e.labels != labels {
			continue
		}
		switch {
		case e.c != nil:
			return e.c.Value(), true
		case e.g != nil:
			return e.g.Value(), true
		case e.h != nil:
			return e.h.Count(), true
		}
	}
	return 0, false
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// snapshot returns the families sorted by name with their entries, for
// the exporters. The per-family entry order is registration order.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	copy(out, r.families)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// NewRunID returns a 16-hex-digit random identifier for correlating a
// run's log lines, metrics and trace regions.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant id keeps
		// logging alive rather than taking the process down.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

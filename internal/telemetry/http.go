package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar publication: expvar panics on duplicate
// names, and Handler may be called more than once in a process.
var publishOnce sync.Once

// PublishExpvar exposes the registry as the expvar variable "rocksalt":
// a map of full series name to value (histograms appear as
// {count, sum}). Safe to call repeatedly; only the first call binds.
func PublishExpvar(r *Registry) {
	publishOnce.Do(func() {
		expvar.Publish("rocksalt", expvar.Func(func() any { return r.expvarSnapshot() }))
	})
}

func (r *Registry) expvarSnapshot() map[string]any {
	out := map[string]any{}
	for _, f := range r.snapshot() {
		for _, e := range f.entries {
			key := f.name
			if e.labels != "" {
				key = f.name + "{" + e.labels + "}"
			}
			switch {
			case e.c != nil:
				out[key] = e.c.Value()
			case e.g != nil:
				out[key] = e.g.Value()
			case e.h != nil:
				out[key] = map[string]int64{"count": e.h.Count(), "sum": e.h.Sum()}
			}
		}
	}
	return out
}

// Handler returns the observability mux: the Prometheus text endpoint
// at /metrics, the expvar JSON dump at /debug/vars, and the full
// net/http/pprof suite under /debug/pprof/. It is what the CLIs serve
// behind -metrics-addr; embedding servers can mount it wherever they
// like.
func Handler(r *Registry) http.Handler {
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

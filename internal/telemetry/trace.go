package telemetry

import (
	"context"
	"runtime/trace"
)

// noopEnd is the shared no-op region closer returned while execution
// tracing is off, so Region never allocates on the disabled path.
var noopEnd = func() {}

// Region opens a runtime/trace region named name and returns its
// closer. When no trace is being collected (the overwhelmingly common
// case) it returns a shared no-op without touching the tracer, so
// instrumented code paths stay allocation- and syscall-free; under
// `go test -trace` or a pprof trace capture the region shows up in the
// trace viewer with proper nesting.
func Region(ctx context.Context, name string) func() {
	if !trace.IsEnabled() {
		return noopEnd
	}
	return trace.StartRegion(ctx, name).End
}

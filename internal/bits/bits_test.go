package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTruncates(t *testing.T) {
	v := New(8, 0x1ff)
	if v.Uint64() != 0xff {
		t.Fatalf("New(8, 0x1ff) = %v, want 0xff", v)
	}
	if New(32, 1<<40).Uint64() != 0 {
		t.Fatal("high bits must be cleared")
	}
	if New(64, ^uint64(0)).Uint64() != ^uint64(0) {
		t.Fatal("64-bit values must round-trip")
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, 0) did not panic", w)
				}
			}()
			New(w, 0)
		}()
	}
}

func TestInt64SignInterpretation(t *testing.T) {
	cases := []struct {
		w    int
		v    uint64
		want int64
	}{
		{8, 0xff, -1},
		{8, 0x7f, 127},
		{8, 0x80, -128},
		{32, 0xffffffff, -1},
		{32, 0x80000000, -2147483648},
		{1, 1, -1},
		{1, 0, 0},
		{64, ^uint64(0), -1},
	}
	for _, c := range cases {
		if got := New(c.w, c.v).Int64(); got != c.want {
			t.Errorf("New(%d, %#x).Int64() = %d, want %d", c.w, c.v, got, c.want)
		}
	}
}

func TestAddSubNegRoundTrip(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(32, a), New(32, b)
		return x.Add(y).Sub(y) == x && x.Sub(y).Add(y) == x && x.Neg().Neg() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := New(16, a), New(16, b), New(16, c)
		return x.Add(y) == y.Add(x) && x.Add(y).Add(z) == x.Add(y.Add(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-width Add did not panic")
		}
	}()
	New(8, 1).Add(New(16, 1))
}

func TestMulHigh(t *testing.T) {
	a, b := New(32, 0xffffffff), New(32, 0xffffffff)
	if got := a.MulHighU(b).Uint64(); got != 0xfffffffe {
		t.Fatalf("MulHighU = %#x, want 0xfffffffe", got)
	}
	// (-1) * (-1) = 1, high bits are 0.
	if got := a.MulHighS(b).Uint64(); got != 0 {
		t.Fatalf("MulHighS = %#x, want 0", got)
	}
	// -1 * 2 = -2 = 0xffffffff_fffffffe; high = 0xffffffff.
	if got := a.MulHighS(New(32, 2)).Uint64(); got != 0xffffffff {
		t.Fatalf("MulHighS(-1, 2) = %#x, want 0xffffffff", got)
	}
}

func TestMulHighSMatchesWide(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a := New(16, uint64(rng.Uint32()))
		b := New(16, uint64(rng.Uint32()))
		wide := a.SignExtend(32).Mul(b.SignExtend(32))
		wantHi := wide.ShrU(New(32, 16)).Truncate(16)
		if got := a.MulHighS(b); got != wantHi {
			t.Fatalf("MulHighS(%v,%v) = %v, want %v", a, b, got, wantHi)
		}
		wideU := a.ZeroExtend(32).Mul(b.ZeroExtend(32))
		wantHiU := wideU.ShrU(New(32, 16)).Truncate(16)
		if got := a.MulHighU(b); got != wantHiU {
			t.Fatalf("MulHighU(%v,%v) = %v, want %v", a, b, got, wantHiU)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	a := New(32, 10)
	z := Zero(32)
	if _, ok := a.DivU(z); ok {
		t.Error("DivU by zero must fail")
	}
	if _, ok := a.RemU(z); ok {
		t.Error("RemU by zero must fail")
	}
	if _, ok := a.DivS(z); ok {
		t.Error("DivS by zero must fail")
	}
	if _, ok := a.RemS(z); ok {
		t.Error("RemS by zero must fail")
	}
}

func TestDivSOverflow(t *testing.T) {
	minInt := New(32, 0x80000000)
	neg1 := New(32, 0xffffffff)
	if _, ok := minInt.DivS(neg1); ok {
		t.Error("MinInt / -1 must report overflow")
	}
	if r, ok := minInt.RemS(neg1); !ok || !r.IsZero() {
		t.Errorf("MinInt %% -1 = %v, %v; want 0, true", r, ok)
	}
}

func TestDivRemIdentity(t *testing.T) {
	f := func(a, b uint32) bool {
		if b == 0 {
			return true
		}
		x, y := New(32, uint64(a)), New(32, uint64(b))
		q, _ := x.DivU(y)
		r, _ := x.RemU(y)
		return q.Mul(y).Add(r) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivSMatchesGo(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 || (a == -2147483648 && b == -1) {
			return true
		}
		x, y := FromInt64(32, int64(a)), FromInt64(32, int64(b))
		q, ok := x.DivS(y)
		r, ok2 := x.RemS(y)
		return ok && ok2 && q.Int64() == int64(a/b) && r.Int64() == int64(a%b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogicOps(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(32, a), New(32, b)
		deMorgan := x.And(y).Not() == x.Not().Or(y.Not())
		xorSelf := x.Xor(x).IsZero()
		return deMorgan && xorSelf && x.And(AllOnes(32)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShifts(t *testing.T) {
	v := New(8, 0x81)
	if got := v.Shl(New(8, 1)).Uint64(); got != 0x02 {
		t.Errorf("0x81 << 1 = %#x, want 0x02", got)
	}
	if got := v.ShrU(New(8, 1)).Uint64(); got != 0x40 {
		t.Errorf("0x81 >>u 1 = %#x, want 0x40", got)
	}
	if got := v.ShrS(New(8, 1)).Uint64(); got != 0xc0 {
		t.Errorf("0x81 >>s 1 = %#x, want 0xc0", got)
	}
	if !v.Shl(New(8, 8)).IsZero() {
		t.Error("overshift left must be zero")
	}
	if !v.ShrU(New(8, 200)).IsZero() {
		t.Error("overshift right must be zero")
	}
	if got := v.ShrS(New(8, 200)).Uint64(); got != 0xff {
		t.Errorf("arithmetic overshift of negative = %#x, want 0xff", got)
	}
}

func TestRotates(t *testing.T) {
	v := New(8, 0x81)
	if got := v.Rol(New(8, 1)).Uint64(); got != 0x03 {
		t.Errorf("rol(0x81,1) = %#x, want 0x03", got)
	}
	if got := v.Ror(New(8, 1)).Uint64(); got != 0xc0 {
		t.Errorf("ror(0x81,1) = %#x, want 0xc0", got)
	}
	f := func(a uint64, s uint8) bool {
		x := New(32, a)
		sh := New(32, uint64(s))
		return x.Rol(sh).Ror(sh) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComparisons(t *testing.T) {
	a, b := New(8, 0xff), New(8, 1)
	if !a.LtU(New(8, 0)).IsZero() {
		t.Error("0xff <u 0 must be false")
	}
	if !b.LtU(a).IsTrue() {
		t.Error("1 <u 0xff must be true")
	}
	if !a.LtS(b).IsTrue() {
		t.Error("-1 <s 1 must be true")
	}
	if !a.Eq(New(8, 0xff)).IsTrue() {
		t.Error("equal values must compare equal")
	}
}

func TestExtensions(t *testing.T) {
	v := New(8, 0x80)
	if got := v.ZeroExtend(32).Uint64(); got != 0x80 {
		t.Errorf("zext = %#x, want 0x80", got)
	}
	if got := v.SignExtend(32).Uint64(); got != 0xffffff80 {
		t.Errorf("sext = %#x, want 0xffffff80", got)
	}
	if got := New(32, 0x12345678).Truncate(8).Uint64(); got != 0x78 {
		t.Errorf("trunc = %#x, want 0x78", got)
	}
	if v.SignExtend(8) != v {
		t.Error("sign-extend to same width must be identity")
	}
}

func TestExtensionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(16, 0).ZeroExtend(8) },
		func() { New(16, 0).SignExtend(8) },
		func() { New(8, 0).Truncate(16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("narrowing extension / widening truncate must panic")
				}
			}()
			f()
		}()
	}
}

func TestParity(t *testing.T) {
	if !New(8, 0).ParityEven() {
		t.Error("parity of 0 is even")
	}
	if New(8, 1).ParityEven() {
		t.Error("parity of 1 is odd")
	}
	if !New(8, 3).ParityEven() {
		t.Error("parity of 3 is even")
	}
	// PF looks at the low byte only.
	if !New(32, 0x100).ParityEven() {
		t.Error("parity must consider only the low byte")
	}
}

func TestBitIndexing(t *testing.T) {
	v := New(16, 0x8001)
	if v.Bit(0) != 1 || v.Bit(15) != 1 || v.Bit(7) != 0 {
		t.Error("Bit() wrong")
	}
	if v.Bit(16) != 0 || v.Bit(-1) != 0 {
		t.Error("out-of-range Bit() must be 0")
	}
	if !v.MSB().IsTrue() {
		t.Error("MSB of 0x8001 (w=16) is set")
	}
	if got := v.TrailingZeros(); got != 0 {
		t.Errorf("TrailingZeros = %d, want 0", got)
	}
	if got := New(16, 0).TrailingZeros(); got != 16 {
		t.Errorf("TrailingZeros(0) = %d, want 16", got)
	}
	if got := v.LeadingBitIndex(); got != 15 {
		t.Errorf("LeadingBitIndex = %d, want 15", got)
	}
	if got := New(16, 0).LeadingBitIndex(); got != -1 {
		t.Errorf("LeadingBitIndex(0) = %d, want -1", got)
	}
}

func TestBoolAndString(t *testing.T) {
	if Bool(true).Uint64() != 1 || Bool(false).Uint64() != 0 {
		t.Error("Bool conversion wrong")
	}
	if s := New(32, 0xdead).String(); s != "32'0xdead" {
		t.Errorf("String = %q", s)
	}
}

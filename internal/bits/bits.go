// Package bits implements fixed-width bit vectors with modular arithmetic.
//
// It plays the role of the CompCert integer library that the paper's RTL
// interpreter is built on: every value flowing through RTL is a bit vector
// of a statically known width, and all arithmetic is performed modulo 2^w.
//
// A Vec carries its width so that mixed-width operations can be rejected at
// run time, mirroring the dependent types the Coq development uses to
// "ensure that only bit-vectors of the appropriate size are used".
package bits

import (
	"fmt"
	mathbits "math/bits"
)

// MaxWidth is the largest supported bit-vector width.
const MaxWidth = 64

// Vec is a bit vector of Width bits. The value is stored in the low Width
// bits of V; all higher bits are guaranteed to be zero (the canonical form).
type Vec struct {
	W int    // width in bits, 1..64
	V uint64 // canonical: V < 2^W
}

// mask returns the bit mask with the low w bits set.
func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// New constructs a w-bit vector holding v truncated to w bits.
// It panics if w is out of range; widths are structural properties of the
// model (like types), so a bad width is a programming error, not an input
// error.
func New(w int, v uint64) Vec {
	if w < 1 || w > MaxWidth {
		panic(fmt.Sprintf("bits: invalid width %d", w))
	}
	return Vec{W: w, V: v & mask(w)}
}

// FromInt64 constructs a w-bit vector from a signed integer (two's
// complement truncation).
func FromInt64(w int, v int64) Vec { return New(w, uint64(v)) }

// Bool converts a condition to a 1-bit vector (1 for true, 0 for false).
func Bool(b bool) Vec {
	if b {
		return Vec{W: 1, V: 1}
	}
	return Vec{W: 1, V: 0}
}

// Zero returns the w-bit zero vector.
func Zero(w int) Vec { return New(w, 0) }

// One returns the w-bit vector holding 1.
func One(w int) Vec { return New(w, 1) }

// AllOnes returns the w-bit vector with every bit set.
func AllOnes(w int) Vec { return New(w, ^uint64(0)) }

// Width returns the vector's width in bits.
func (a Vec) Width() int { return a.W }

// Uint64 returns the unsigned interpretation of the vector.
func (a Vec) Uint64() uint64 { return a.V }

// Int64 returns the signed (two's complement) interpretation.
func (a Vec) Int64() int64 {
	if a.W == 64 {
		return int64(a.V)
	}
	sign := uint64(1) << uint(a.W-1)
	if a.V&sign != 0 {
		return int64(a.V | ^mask(a.W))
	}
	return int64(a.V)
}

// IsZero reports whether every bit is clear.
func (a Vec) IsZero() bool { return a.V == 0 }

// IsTrue reports whether the vector is a non-zero value; it is the standard
// reading of 1-bit flags.
func (a Vec) IsTrue() bool { return a.V != 0 }

// Bit returns bit i (0 = least significant) as 0 or 1.
func (a Vec) Bit(i int) uint64 {
	if i < 0 || i >= a.W {
		return 0
	}
	return (a.V >> uint(i)) & 1
}

// MSB returns the most significant bit as a 1-bit vector.
func (a Vec) MSB() Vec { return Bool(a.Bit(a.W-1) == 1) }

// String renders the vector as width'value in hex, e.g. "32'0xdeadbeef".
func (a Vec) String() string { return fmt.Sprintf("%d'0x%x", a.W, a.V) }

func (a Vec) check(b Vec, op string) {
	if a.W != b.W {
		panic(fmt.Sprintf("bits: width mismatch in %s: %d vs %d", op, a.W, b.W))
	}
}

// Add returns a+b mod 2^w.
func (a Vec) Add(b Vec) Vec { a.check(b, "add"); return New(a.W, a.V+b.V) }

// Sub returns a-b mod 2^w.
func (a Vec) Sub(b Vec) Vec { a.check(b, "sub"); return New(a.W, a.V-b.V) }

// Neg returns -a mod 2^w.
func (a Vec) Neg() Vec { return New(a.W, -a.V) }

// Mul returns the low w bits of a*b.
func (a Vec) Mul(b Vec) Vec { a.check(b, "mul"); return New(a.W, a.V*b.V) }

// MulHighU returns the high w bits of the unsigned product a*b, for w <= 32
// computed exactly; for w == 64 it uses 128-bit arithmetic.
func (a Vec) MulHighU(b Vec) Vec {
	a.check(b, "mulhu")
	if a.W <= 32 {
		return New(a.W, (a.V*b.V)>>uint(a.W))
	}
	hi, _ := mathbits.Mul64(a.V, b.V)
	return New(a.W, hi)
}

// MulHighS returns the high w bits of the signed product a*b.
func (a Vec) MulHighS(b Vec) Vec {
	a.check(b, "mulhs")
	if a.W <= 32 {
		p := a.Int64() * b.Int64()
		return New(a.W, uint64(p)>>uint(a.W))
	}
	hi, lo := mathbits.Mul64(a.V, b.V)
	// Adjust for signedness: (a_s * b_s)_hi = hi - (a<0 ? b : 0) - (b<0 ? a : 0).
	_ = lo
	if a.Int64() < 0 {
		hi -= b.V
	}
	if b.Int64() < 0 {
		hi -= a.V
	}
	return New(a.W, hi)
}

// DivU returns the unsigned quotient a/b. ok is false when b is zero
// (the x86 semantics turns that into a #DE trap).
func (a Vec) DivU(b Vec) (q Vec, ok bool) {
	a.check(b, "divu")
	if b.V == 0 {
		return Zero(a.W), false
	}
	return New(a.W, a.V/b.V), true
}

// RemU returns the unsigned remainder a%b; ok is false when b is zero.
func (a Vec) RemU(b Vec) (r Vec, ok bool) {
	a.check(b, "remu")
	if b.V == 0 {
		return Zero(a.W), false
	}
	return New(a.W, a.V%b.V), true
}

// DivS returns the signed quotient (truncated toward zero); ok is false for
// division by zero or the overflowing MinInt/-1 case.
func (a Vec) DivS(b Vec) (q Vec, ok bool) {
	a.check(b, "divs")
	bs := b.Int64()
	if bs == 0 {
		return Zero(a.W), false
	}
	as := a.Int64()
	if as == minSigned(a.W) && bs == -1 {
		return Zero(a.W), false
	}
	return FromInt64(a.W, as/bs), true
}

// RemS returns the signed remainder; ok mirrors DivS.
func (a Vec) RemS(b Vec) (r Vec, ok bool) {
	a.check(b, "rems")
	bs := b.Int64()
	if bs == 0 {
		return Zero(a.W), false
	}
	as := a.Int64()
	if as == minSigned(a.W) && bs == -1 {
		return Zero(a.W), true // remainder is 0 even though quotient overflows
	}
	return FromInt64(a.W, as%bs), true
}

func minSigned(w int) int64 {
	return -(int64(1) << uint(w-1))
}

// And returns the bitwise conjunction.
func (a Vec) And(b Vec) Vec { a.check(b, "and"); return Vec{a.W, a.V & b.V} }

// Or returns the bitwise disjunction.
func (a Vec) Or(b Vec) Vec { a.check(b, "or"); return Vec{a.W, a.V | b.V} }

// Xor returns the bitwise exclusive or.
func (a Vec) Xor(b Vec) Vec { a.check(b, "xor"); return Vec{a.W, a.V ^ b.V} }

// Not returns the bitwise complement.
func (a Vec) Not() Vec { return New(a.W, ^a.V) }

// Shl returns a shifted left by b bits; shifts >= w yield zero.
func (a Vec) Shl(b Vec) Vec {
	a.check(b, "shl")
	if b.V >= uint64(a.W) {
		return Zero(a.W)
	}
	return New(a.W, a.V<<b.V)
}

// ShrU returns the logical right shift; shifts >= w yield zero.
func (a Vec) ShrU(b Vec) Vec {
	a.check(b, "shru")
	if b.V >= uint64(a.W) {
		return Zero(a.W)
	}
	return Vec{a.W, a.V >> b.V}
}

// ShrS returns the arithmetic right shift; shifts >= w replicate the sign.
func (a Vec) ShrS(b Vec) Vec {
	a.check(b, "shrs")
	s := b.V
	if s >= uint64(a.W) {
		s = uint64(a.W - 1)
	}
	return FromInt64(a.W, a.Int64()>>s)
}

// Rol rotates left by b mod w bits.
func (a Vec) Rol(b Vec) Vec {
	a.check(b, "rol")
	s := b.V % uint64(a.W)
	if s == 0 {
		return a
	}
	return New(a.W, a.V<<s|a.V>>(uint64(a.W)-s))
}

// Ror rotates right by b mod w bits.
func (a Vec) Ror(b Vec) Vec {
	a.check(b, "ror")
	s := b.V % uint64(a.W)
	if s == 0 {
		return a
	}
	return New(a.W, a.V>>s|a.V<<(uint64(a.W)-s))
}

// Eq compares for equality, returning a 1-bit vector.
func (a Vec) Eq(b Vec) Vec { a.check(b, "eq"); return Bool(a.V == b.V) }

// LtU is the unsigned less-than comparison as a 1-bit vector.
func (a Vec) LtU(b Vec) Vec { a.check(b, "ltu"); return Bool(a.V < b.V) }

// LtS is the signed less-than comparison as a 1-bit vector.
func (a Vec) LtS(b Vec) Vec { a.check(b, "lts"); return Bool(a.Int64() < b.Int64()) }

// ZeroExtend widens the vector to w bits with zero fill. It panics when w
// is narrower than the current width; use Truncate for that.
func (a Vec) ZeroExtend(w int) Vec {
	if w < a.W {
		panic(fmt.Sprintf("bits: zero-extend %d to narrower %d", a.W, w))
	}
	return New(w, a.V)
}

// SignExtend widens the vector to w bits replicating the sign bit.
func (a Vec) SignExtend(w int) Vec {
	if w < a.W {
		panic(fmt.Sprintf("bits: sign-extend %d to narrower %d", a.W, w))
	}
	return FromInt64(w, a.Int64())
}

// Truncate narrows the vector to its low w bits. Widening is rejected.
func (a Vec) Truncate(w int) Vec {
	if w > a.W {
		panic(fmt.Sprintf("bits: truncate %d to wider %d", a.W, w))
	}
	return New(w, a.V)
}

// OnesCount returns the number of set bits.
func (a Vec) OnesCount() int { return mathbits.OnesCount64(a.V) }

// ParityEven reports the x86 PF convention: even parity of the low byte.
func (a Vec) ParityEven() bool {
	return mathbits.OnesCount8(uint8(a.V))%2 == 0
}

// TrailingZeros returns the index of the lowest set bit, or w when zero.
func (a Vec) TrailingZeros() int {
	if a.V == 0 {
		return a.W
	}
	return mathbits.TrailingZeros64(a.V)
}

// LeadingBitIndex returns the index of the highest set bit, or -1 when zero
// (the BSR convention).
func (a Vec) LeadingBitIndex() int {
	if a.V == 0 {
		return -1
	}
	return 63 - mathbits.LeadingZeros64(a.V)
}

package faultinject_test

import (
	"context"
	"testing"

	"rocksalt/internal/faultinject"
	"rocksalt/internal/nacl"
)

// FuzzFaultInjectSoundness is the soundness invariant as a fuzz target:
// for ANY byte string — the fuzzer mutates compliant images from the
// generator, the unsafe corpus, and whatever it invents — the checker
// either rejects the image or the simulator runs it without escaping
// the sandbox. CI runs this for a 15s smoke; run it longer with
//
//	go test -run '^$' -fuzz FuzzFaultInjectSoundness ./internal/faultinject
func FuzzFaultInjectSoundness(f *testing.F) {
	gen := nacl.NewGenerator(31)
	for i := 0; i < 6; i++ {
		img, err := gen.Random(25)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img, int64(i))
		// Pre-mutated seeds bias the fuzzer toward the interesting
		// margin between accepted and rejected.
		for k := 0; k < faultinject.NumImageKinds; k++ {
			f.Add(faultinject.Mutate(img, faultinject.Kind(k), int64(i)), int64(i))
		}
	}
	for _, img := range nacl.UnsafeCorpus() {
		f.Add(img, int64(0))
	}

	// CrossCheck makes every fuzz input also a differential test of the
	// fused engine against the reference three-DFA loop.
	h := &faultinject.Harness{Checker: checker(f), MaxSteps: 100, SimSeeds: 1, CrossCheck: true}
	f.Fuzz(func(t *testing.T, img []byte, simSeed int64) {
		if len(img) > 1<<14 {
			t.Skip()
		}
		// simSeed varies the start state via the harness seed knob: use
		// it to pick the single randomization the harness runs.
		h.SimSeeds = 1 + int(uint64(simSeed)%2)
		rejected, err := h.CheckMutant(context.Background(), img)
		if err != nil {
			t.Fatalf("soundness invariant violated (rejected=%v) on % x: %v", rejected, img, err)
		}
	})
}

package faultinject

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/sim"
	"rocksalt/internal/telemetry"
	"rocksalt/internal/x86/machine"
)

// White-box tests for the two alarm counters. Genuine triggers are
// unreachable through the public API — an accepted image that escapes
// would be a soundness bug — so these tests drive the detection paths
// directly: a stray byte planted in memory, and a simulator broken on
// purpose.

func withTelemetry(t *testing.T) {
	t.Helper()
	prev := telemetry.Enabled()
	telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(prev) })
}

// TestEscapeScanDetects plants bytes inside and outside the sandbox
// windows and asserts the scan flags exactly the outside one — and
// bumps the memory-escape counter.
func TestEscapeScanDetects(t *testing.T) {
	withTelemetry(t)
	img := bytes.Repeat([]byte{0x90}, 64)

	st := machine.New()
	st.Mem.WriteBytes(codeBase, img)
	st.Mem.WriteBytes(dataBase+100, []byte{0xaa}) // in the data window: fine
	if err := escapeScan(st.Mem, len(img)); err != nil {
		t.Fatalf("in-sandbox writes flagged as escape: %v", err)
	}

	before, _ := telemetry.Default().Value("rocksalt_faultinject_memory_escapes_total")
	st.Mem.WriteBytes(dataBase+dataLim+0x1000, []byte{0xbb}) // outside both windows
	err := escapeScan(st.Mem, len(img))
	if err == nil {
		t.Fatal("stray byte outside the sandbox not detected")
	}
	if !strings.Contains(err.Error(), "escaped the sandbox") {
		t.Errorf("unexpected escape error: %v", err)
	}
	after, _ := telemetry.Default().Value("rocksalt_faultinject_memory_escapes_total")
	if after-before != 1 {
		t.Errorf("memory-escape counter moved by %d, want 1", after-before)
	}
}

// TestContainedPanicCounter breaks the shared simulator (nil decoder,
// the same trick sim's own panic tests use) and asserts that the
// containment path in contained() counts the resulting internal-fault
// halt instead of hiding it.
func TestContainedPanicCounter(t *testing.T) {
	withTelemetry(t)
	c, err := core.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	img := bytes.Repeat([]byte{0x90}, core.BundleSize)
	valid, pairJmp, rep := c.AnalyzeContext(context.Background(), img, core.VerifyOptions{Workers: 1})
	if !rep.Safe {
		t.Fatal("NOP image rejected")
	}

	h := &Harness{Checker: c, MaxSteps: 5, SimSeeds: 1}
	h.s = sim.New(machine.New())
	h.s.Dec = nil // every Step now panics in decode and is contained

	before, _ := telemetry.Default().Value("rocksalt_faultinject_contained_panics_total")
	if err := h.contained(img, valid, pairJmp, 0); err != nil {
		t.Fatalf("contained panic escalated to an invariant violation: %v", err)
	}
	after, _ := telemetry.Default().Value("rocksalt_faultinject_contained_panics_total")
	if after-before != 1 {
		t.Errorf("contained-panic counter moved by %d, want 1", after-before)
	}
}

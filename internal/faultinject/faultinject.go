// Package faultinject is the adversarial side of the verification
// stack: deterministic, seedable mutators that corrupt code images (and
// the serialized DFA tables the checker can be loaded from), plus a
// harness that checks the fail-closed soundness invariant on every
// mutant — a mutant is either rejected by the checker, or it is
// accepted and the simulator cannot escape the sandbox while running
// it. The mutator families follow where SFI soundness bugs actually
// hide: flipped bits inside encodings, spliced and truncated images,
// and instructions straddling the 32-byte bundle boundary.
//
// Everything is deterministic: Mutate(img, kind, seed) is a pure
// function, so a failing (kind, seed) pair from the experiment harness
// or the fuzzer reproduces exactly.
package faultinject

import (
	"fmt"
	"math/rand"

	"rocksalt/internal/core"
)

// Kind enumerates the mutator families.
type Kind int

const (
	// BitFlip flips 1–4 random bits anywhere in the image.
	BitFlip Kind = iota
	// ByteSplice overwrites a short run of bytes, either with random
	// garbage or with a run copied from elsewhere in the image (the
	// latter preserves local plausibility — every byte is one the
	// assembler really emitted).
	ByteSplice
	// Truncate cuts the image to a shorter (usually bundle-misaligned)
	// length.
	Truncate
	// Straddle plants a multi-byte immediate instruction so that it
	// begins before a bundle boundary and extends across it — the exact
	// shape the bundle invariant exists to reject.
	Straddle
	// TableCorrupt corrupts the serialized DFA table bundle rather than
	// the image; the harness asserts the table loader fails closed. It
	// is handled by CheckTables, not Mutate.
	TableCorrupt

	// NumImageKinds counts the mutator families that apply to images
	// (everything before TableCorrupt).
	NumImageKinds = int(TableCorrupt)
)

var kindNames = [...]string{"bit-flip", "byte-splice", "truncate", "straddle", "table-corrupt"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Params aim the mutators at one policy's decision surface: the
// mutators that exploit image geometry (Straddle, the seam-anchored
// ByteSplice mode) place their offsets relative to the checker's bundle
// boundaries and masked-pair layout, not the NaCl-32 constants. The
// zero value is invalid; use DefaultParams or ParamsFor.
type Params struct {
	// Bundle is the policy's alignment quantum (the checker's
	// PolicyInfo().BundleSize).
	Bundle int
	// MaskLen is the encoded size of the policy's masking AND: the jump
	// half of a masked pair sits MaskLen bytes into the pair, which is
	// the seam splice mutants aim for (3 for imm8 masks, 6 for the
	// imm32 masks a 32-bit mask width compiles to).
	MaskLen int
}

// DefaultParams are the default NaCl-32 mutator parameters; Mutate uses
// them.
func DefaultParams() Params {
	return Params{Bundle: core.BundleSize, MaskLen: 3}
}

// ParamsFor derives mutator parameters from a checker's compiled
// policy.
func ParamsFor(info core.PolicyInfo) Params {
	return Params{Bundle: info.BundleSize, MaskLen: info.MaskLen}
}

// Mutate returns a deterministic mutant of img for (kind, seed) under
// the default NaCl-32 parameters. The input is never modified; the
// mutant is always a fresh slice. Images too small for a given mutator
// (or kind TableCorrupt) are returned as plain copies.
func Mutate(img []byte, kind Kind, seed int64) []byte {
	return MutateParams(img, kind, seed, DefaultParams())
}

// MutateParams is Mutate parameterized on the target policy's geometry:
// straddle mutants cross the policy's own bundle boundaries and splice
// mutants can anchor on the mask/jump seam of its masked pairs, so
// NaCl-16 and REINS campaigns mutate at the boundaries their checkers
// actually enforce. MutateParams(img, kind, seed, p) is a pure function
// of its arguments.
func MutateParams(img []byte, kind Kind, seed int64, p Params) []byte {
	out := append([]byte(nil), img...)
	if len(out) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case BitFlip:
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			bit := rng.Intn(len(out) * 8)
			out[bit/8] ^= 1 << (bit % 8)
		}
	case ByteSplice:
		n := 1 + rng.Intn(16)
		if n > len(out) {
			n = len(out)
		}
		dst := rng.Intn(len(out) - n + 1)
		if len(out) > p.Bundle && rng.Intn(4) == 0 {
			// Seam-anchored mode: start the splice just before a bundle
			// boundary, inside the window where a masked pair's AND would
			// sit — severing mask from jump, or splitting the boundary,
			// at exactly the offsets this policy's checker must police.
			b := (1 + rng.Intn(len(out)/p.Bundle)) * p.Bundle
			dst = b - 1 - rng.Intn(p.MaskLen+2)
			if dst < 0 {
				dst = 0
			}
			if dst > len(out)-n {
				dst = len(out) - n
			}
		}
		if rng.Intn(2) == 0 {
			rng.Read(out[dst : dst+n])
		} else {
			src := rng.Intn(len(out) - n + 1)
			copy(out[dst:dst+n], img[src:src+n])
		}
	case Truncate:
		if len(out) > 1 {
			out = out[:1+rng.Intn(len(out)-1)]
		}
	case Straddle:
		// A MOV r32, imm32 (0xb8+r, 5 bytes) planted 1–4 bytes before a
		// bundle boundary necessarily crosses it.
		if len(out) > p.Bundle {
			boundaries := len(out) / p.Bundle
			b := (1 + rng.Intn(boundaries)) * p.Bundle
			at := b - 1 - rng.Intn(4)
			if at < 0 {
				at = 0
			}
			enc := []byte{0xb8 + byte(rng.Intn(8)), byte(rng.Int()), byte(rng.Int()), byte(rng.Int()), byte(rng.Int())}
			copy(out[at:], enc[:min(len(enc), len(out)-at)])
		}
	}
	return out
}

package faultinject_test

import (
	"bytes"
	"testing"

	"rocksalt/internal/faultinject"
)

// TestMutateParamsDeterministic: MutateParams is a pure function of
// (img, kind, seed, params) and never modifies its input, for
// non-default policy geometry.
func TestMutateParamsDeterministic(t *testing.T) {
	base := corpus(t, 1, 60)[0]
	orig := append([]byte(nil), base...)
	p := faultinject.Params{Bundle: 16, MaskLen: 6} // reins-16 geometry
	for k := 0; k < faultinject.NumImageKinds; k++ {
		kind := faultinject.Kind(k)
		for seed := int64(0); seed < 50; seed++ {
			a := faultinject.MutateParams(base, kind, seed, p)
			b := faultinject.MutateParams(base, kind, seed, p)
			if !bytes.Equal(a, b) {
				t.Fatalf("%v seed %d: two runs differ", kind, seed)
			}
			if !bytes.Equal(base, orig) {
				t.Fatalf("%v seed %d: input image modified", kind, seed)
			}
		}
	}
}

// TestMutateParamsGeometry: the geometry-aware mutators actually
// consume the policy parameters — Straddle under a 16-byte bundle
// plants its instruction within the last 4 bytes before a 16-byte
// boundary, not a 32-byte one.
func TestMutateParamsGeometry(t *testing.T) {
	img := bytes.Repeat([]byte{0x90}, 4*16)
	p := faultinject.Params{Bundle: 16, MaskLen: 6}
	placed := 0
	for seed := int64(0); seed < 100; seed++ {
		out := faultinject.MutateParams(img, faultinject.Straddle, seed, p)
		first := -1
		for i := range out {
			if out[i] != img[i] {
				first = i
				break
			}
		}
		if first < 0 {
			continue // the planted bytes happened to equal the nops
		}
		placed++
		// Straddle writes a 5-byte MOV starting 1-4 bytes before a
		// bundle boundary, so the first changed byte lands in the last
		// 4 bytes of a 16-byte bundle.
		if first%16 < 12 {
			t.Fatalf("seed %d: straddle starts at offset %d (mod 16 = %d), not before a 16-byte boundary",
				seed, first, first%16)
		}
	}
	if placed == 0 {
		t.Fatal("no straddle mutant changed the image; geometry unexercised")
	}

	// The same seeds under different geometry must eventually diverge:
	// if no seed distinguishes Params{16,6} from Params{32,3}, the
	// parameters are dead.
	img32 := bytes.Repeat([]byte{0x90}, 4*32)
	q := faultinject.Params{Bundle: 32, MaskLen: 3}
	diverged := false
	for seed := int64(0); seed < 100 && !diverged; seed++ {
		a := faultinject.MutateParams(img32, faultinject.Straddle, seed, p)
		b := faultinject.MutateParams(img32, faultinject.Straddle, seed, q)
		diverged = !bytes.Equal(a, b)
	}
	if !diverged {
		t.Fatal("Params{16,6} and Params{32,3} produced identical straddle mutants for 100 seeds")
	}
}

package faultinject_test

import (
	"reflect"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/faultinject"
)

// diffSpans reports the byte spans below min(len(a), len(b)) where a
// and b differ, coalescing runs separated by small gaps — the shape a
// real caller hands to VerifyDelta after a mutation. Bytes beyond the
// shorter image are the verifier's own size-change problem, per the
// Range contract.
func diffSpans(a, b []byte) []core.Range {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	var out []core.Range
	for i := 0; i < len(a); i++ {
		if a[i] == b[i] {
			continue
		}
		j := i + 1
		for j < len(a) && a[j] != b[j] {
			j++
		}
		if n := len(out); n > 0 && i-(out[n-1].Off+out[n-1].Len) < 512 {
			out[n-1].Len = j - out[n-1].Off
		} else {
			out = append(out, core.Range{Off: i, Len: j - i})
		}
		i = j
	}
	return out
}

// TestDeltaAgreementUnderMutation drives the incremental verifier the
// way the differential campaign drives the full one: every image
// mutator, several seeds each, applied *between* delta rounds with the
// state threaded straight through — mutant after mutant, with periodic
// reverts to the clean base — and each round's report compared to a
// cold full verify of the same bytes. Any stale retained artifact
// (a violation masked by a replayed chunk, a missed flip back to
// clean) shows up as a disagreement.
func TestDeltaAgreementUnderMutation(t *testing.T) {
	c := checker(t)
	base := corpus(t, 1, 60000)[0]
	params := faultinject.ParamsFor(c.PolicyInfo())
	opts := core.VerifyOptions{Workers: 1}

	agree := func(what string, got, want *core.Report) {
		t.Helper()
		if got.Safe != want.Safe || got.Outcome != want.Outcome || got.Total != want.Total ||
			!reflect.DeepEqual(got.Violations, want.Violations) {
			t.Fatalf("%s: delta and full verify disagree\ndelta: safe %v total %d %+v\nfull:  safe %v total %d %+v",
				what, got.Safe, got.Total, got.Violations, want.Safe, want.Total, want.Violations)
		}
	}

	rep, state, err := c.VerifyDeltaWith(base, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	agree("base round", rep, c.VerifyWith(base, opts))
	if !rep.Safe {
		t.Fatal("base image rejected before mutation")
	}

	prev := base
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for k := 0; k < faultinject.NumImageKinds; k++ {
		kind := faultinject.Kind(k)
		for seed := int64(0); seed < seeds; seed++ {
			mutant := faultinject.MutateParams(base, kind, seed, params)
			rep, state, err = c.VerifyDeltaWith(mutant, diffSpans(prev, mutant), state, opts)
			if err != nil {
				t.Fatal(err)
			}
			agree(kind.String()+" mutant", rep, c.VerifyWith(mutant, opts))
			prev = mutant
		}
		// Revert to the clean base between kinds: the state must let go
		// of every mutant violation.
		rep, state, err = c.VerifyDeltaWith(base, diffSpans(prev, base), state, opts)
		if err != nil {
			t.Fatal(err)
		}
		agree(kind.String()+" revert", rep, c.VerifyWith(base, opts))
		if !rep.Safe {
			t.Fatalf("%v: reverted base rejected", kind)
		}
		prev = base
	}
}

package faultinject_test

import (
	"bytes"
	"context"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/faultinject"
	"rocksalt/internal/nacl"
	"rocksalt/internal/telemetry"
)

func checker(t testing.TB) *core.Checker {
	t.Helper()
	c, err := core.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func corpus(t testing.TB, n, instrs int) [][]byte {
	t.Helper()
	gen := nacl.NewGenerator(77)
	c := checker(t)
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		img, err := gen.Random(instrs)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Verify(img) {
			t.Fatalf("corpus image %d rejected before mutation", i)
		}
		out = append(out, img)
	}
	return out
}

// TestMutateDeterministic: Mutate is a pure function of (img, kind,
// seed) and never aliases or modifies its input.
func TestMutateDeterministic(t *testing.T) {
	base := corpus(t, 1, 60)[0]
	orig := append([]byte(nil), base...)
	for k := 0; k < faultinject.NumImageKinds; k++ {
		kind := faultinject.Kind(k)
		for seed := int64(0); seed < 50; seed++ {
			a := faultinject.Mutate(base, kind, seed)
			b := faultinject.Mutate(base, kind, seed)
			if !bytes.Equal(a, b) {
				t.Fatalf("%v seed %d: two runs differ", kind, seed)
			}
			if !bytes.Equal(base, orig) {
				t.Fatalf("%v seed %d: input image modified", kind, seed)
			}
		}
		// At least some seeds must actually change the image (a mutator
		// that never mutates kills nothing).
		changed := 0
		for seed := int64(0); seed < 50; seed++ {
			if !bytes.Equal(faultinject.Mutate(base, kind, seed), orig) {
				changed++
			}
		}
		if changed == 0 {
			t.Errorf("%v: no seed out of 50 produced a distinct mutant", kind)
		}
	}
}

// TestMutateSmallImages: the mutators are total on degenerate inputs.
func TestMutateSmallImages(t *testing.T) {
	for _, img := range [][]byte{nil, {}, {0x90}, bytes.Repeat([]byte{0x90}, 32)} {
		for k := 0; k < faultinject.NumImageKinds; k++ {
			out := faultinject.Mutate(img, faultinject.Kind(k), 3)
			if len(out) > len(img) {
				t.Errorf("kind %d grew a %d-byte image to %d", k, len(img), len(out))
			}
		}
	}
}

// TestFaultInjectionCampaign is the acceptance-criteria run: >= 10,000
// deterministic mutants over the seed corpus with zero invariant
// violations — every mutant is rejected, or it is accepted and its
// simulation stays inside the sandbox.
func TestFaultInjectionCampaign(t *testing.T) {
	bases := corpus(t, 5, 60)
	perKind := 500 // 5 bases x 4 kinds x 500 = 10,000 mutants
	if testing.Short() {
		perKind = 50
	}
	// Run with telemetry enabled and hold the campaign counters to the
	// same accounting as the returned Stats (deltas: other tests in the
	// binary also bump the process-wide counters).
	prevTel := telemetry.Enabled()
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prevTel)
	reg := telemetry.Default()
	mutants0, _ := reg.Value("rocksalt_faultinject_mutants_total")
	rejected0, _ := reg.Value("rocksalt_faultinject_rejected_total")
	contained0, _ := reg.Value("rocksalt_faultinject_contained_total")
	escapes0, _ := reg.Value("rocksalt_faultinject_escapes_total")

	h := &faultinject.Harness{Checker: checker(t)}
	stats, err := h.Run(context.Background(), bases, perKind, 1)
	if err != nil {
		t.Fatalf("campaign interrupted: %v", err)
	}

	mutants1, _ := reg.Value("rocksalt_faultinject_mutants_total")
	rejected1, _ := reg.Value("rocksalt_faultinject_rejected_total")
	contained1, _ := reg.Value("rocksalt_faultinject_contained_total")
	escapes1, _ := reg.Value("rocksalt_faultinject_escapes_total")
	if mutants1-mutants0 != int64(stats.Mutants) ||
		rejected1-rejected0 != int64(stats.Rejected) ||
		contained1-contained0 != int64(stats.Contained) ||
		escapes1-escapes0 != int64(len(stats.Escapes)) {
		t.Errorf("campaign counters diverged from Stats: mutants %d/%d rejected %d/%d contained %d/%d escapes %d/%d",
			mutants1-mutants0, stats.Mutants, rejected1-rejected0, stats.Rejected,
			contained1-contained0, stats.Contained, escapes1-escapes0, len(stats.Escapes))
	}
	if want := len(bases) * faultinject.NumImageKinds * perKind; stats.Mutants != want {
		t.Fatalf("ran %d mutants, want %d", stats.Mutants, want)
	}
	if len(stats.Escapes) != 0 {
		for _, e := range stats.Escapes {
			t.Errorf("sandbox escape: %v", e)
		}
		t.Fatalf("%d invariant violations in %d mutants", len(stats.Escapes), stats.Mutants)
	}
	if stats.Rejected+stats.Contained != stats.Mutants {
		t.Fatalf("accounting: %d rejected + %d contained != %d mutants",
			stats.Rejected, stats.Contained, stats.Mutants)
	}
	// The campaign must actually exercise both arms of the invariant.
	if stats.Rejected == 0 {
		t.Error("no mutant was rejected — the mutators are too gentle")
	}
	if stats.Contained == 0 {
		t.Error("no mutant survived to simulation — the containment arm is untested")
	}
	for k, ks := range stats.PerKind {
		if ks.Mutants == 0 {
			t.Errorf("kind %v generated no mutants", k)
		}
	}
}

// TestCampaignDeterministic: two identical campaigns produce the same
// kill table.
func TestCampaignDeterministic(t *testing.T) {
	bases := corpus(t, 2, 40)
	h := &faultinject.Harness{Checker: checker(t)}
	a, err := h.Run(context.Background(), bases, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(context.Background(), bases, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mutants != b.Mutants || a.Rejected != b.Rejected || a.Contained != b.Contained {
		t.Fatalf("campaigns diverged: %+v vs %+v", a, b)
	}
	for k := 0; k < faultinject.NumImageKinds; k++ {
		ka, kb := a.PerKind[faultinject.Kind(k)], b.PerKind[faultinject.Kind(k)]
		if *ka != *kb {
			t.Fatalf("kind %v diverged: %+v vs %+v", faultinject.Kind(k), *ka, *kb)
		}
	}
}

// TestCampaignCancellation: a canceled campaign stops early and
// reports the context error with partial stats, mirroring the
// engine's own cancellation discipline.
func TestCampaignCancellation(t *testing.T) {
	bases := corpus(t, 2, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := &faultinject.Harness{Checker: checker(t)}
	stats, err := h.Run(ctx, bases, 1000, 1)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Mutants != 0 {
		t.Fatalf("pre-canceled campaign still ran %d mutants", stats.Mutants)
	}
}

// TestTableCorruptionFailsClosed: corrupting the serialized DFA bundle
// can never yield a checker that silently disagrees with the pristine
// one — the loader's magic/shape/CRC checks reject essentially all
// corruptions, and anything that loads must verify identically.
func TestTableCorruptionFailsClosed(t *testing.T) {
	set, err := core.BuildDFAs()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	probes := corpus(t, 2, 30)
	probes = append(probes, nacl.Unsafe(nacl.BareIndirectJump), nacl.Unsafe(nacl.StraddlingBoundary))
	n := 600
	if testing.Short() {
		n = 60
	}
	rejected, clean, err := faultinject.CheckTables(buf.Bytes(), probes, checker(t), n, 5)
	if err != nil {
		t.Fatalf("fail-open table load: %v", err)
	}
	if rejected+clean != n {
		t.Fatalf("accounting: %d + %d != %d", rejected, clean, n)
	}
	if rejected == 0 {
		t.Error("no corruption was rejected by the loader — CRC/shape checks are dead")
	}
}

package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"

	"rocksalt/internal/core"
	"rocksalt/internal/rtl"
	"rocksalt/internal/sim"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/machine"
)

// The sandbox layout the harness simulates accepted mutants under —
// the same shape as the executable soundness theorem's tests: code and
// data segments disjoint, with guard space between and around them.
const (
	codeBase = 0x10000
	dataBase = 0x200000
	dataLim  = 0xffff
)

// Escape records one invariant violation: an accepted mutant whose
// simulation left the sandbox. Any Escape is a soundness bug in the
// checker (or a containment bug in the model) — the campaign's expected
// count is zero, always.
type Escape struct {
	Kind   Kind
	Seed   int64
	Base   int // index of the base image the mutant came from
	Detail string
}

func (e Escape) String() string {
	return fmt.Sprintf("%v mutant (base %d, seed %d): %s", e.Kind, e.Base, e.Seed, e.Detail)
}

// Stats aggregates a mutation campaign. PerKind is the mutant-kill
// table: for each mutator family, how many mutants were generated, how
// many the checker rejected (killed), and how many were accepted and
// then simulated without escaping.
type Stats struct {
	Mutants   int
	Rejected  int
	Contained int
	PerKind   map[Kind]*KindStats
	Escapes   []Escape
}

// KindStats is one row of the mutant-kill table.
type KindStats struct {
	Mutants   int
	Rejected  int
	Contained int
	Escapes   int
}

// Harness drives deterministic mutation campaigns against a checker.
// The zero value is not usable; fill in Checker.
type Harness struct {
	Checker *core.Checker
	// MaxSteps bounds the simulation of each accepted mutant (default
	// 200). Traps, decode failures and contained panics are safe halts.
	MaxSteps int
	// SimSeeds is how many (register file, oracle) randomizations each
	// accepted mutant is executed under (default 2).
	SimSeeds int
	// Workers is passed through to the verifier (default 1; the
	// campaign itself is the parallel dimension).
	Workers int
	// CrossCheck additionally runs every mutant through both stage-1
	// engines — the fused product automaton and the reference three-DFA
	// loop — and treats any divergence in the structured reports as an
	// invariant violation. It turns the campaign into a differential
	// test of the fusion on exactly the adversarial inputs mutation
	// produces.
	CrossCheck bool

	// dec and s are shared by every simulation: the decoder's lazy parse
	// trie and the simulator's translation cache warm up across mutants,
	// which dominates campaign throughput. The cache key is (pc,
	// instruction bytes), so reuse across unrelated images is sound.
	dec *decode.Decoder
	s   *sim.Simulator
}

func (h *Harness) decoder() *decode.Decoder {
	if h.dec == nil {
		h.dec = decode.NewDecoder()
	}
	return h.dec
}

// simulator returns the shared simulator retargeted at st.
func (h *Harness) simulator(st *machine.State) *sim.Simulator {
	if h.s == nil {
		h.s = sim.New(st)
		h.s.Dec = h.decoder()
	}
	h.s.St = st
	return h.s
}

func (h *Harness) maxSteps() int {
	if h.MaxSteps > 0 {
		return h.MaxSteps
	}
	return 200
}

func (h *Harness) simSeeds() int {
	if h.SimSeeds > 0 {
		return h.SimSeeds
	}
	return 2
}

// Run applies perKind mutants of every image-mutator family to every
// base image and checks the soundness invariant on each. Mutant m of
// kind k over base b uses seed baseSeed + int64(m) derived per (b, k,
// m), so campaigns are reproducible byte for byte. Run polls ctx
// between mutants and returns early (with the partial Stats and
// ctx.Err()) when it is done — a campaign is itself a long-running
// verification workload and obeys the same cancellation discipline as
// the engine it is testing.
func (h *Harness) Run(ctx context.Context, bases [][]byte, perKind int, baseSeed int64) (*Stats, error) {
	stats := &Stats{PerKind: map[Kind]*KindStats{}}
	for k := 0; k < NumImageKinds; k++ {
		stats.PerKind[Kind(k)] = &KindStats{}
	}
	for b, base := range bases {
		for k := 0; k < NumImageKinds; k++ {
			kind := Kind(k)
			ks := stats.PerKind[kind]
			for m := 0; m < perKind; m++ {
				if err := ctx.Err(); err != nil {
					return stats, err
				}
				seed := baseSeed + int64(b)*1_000_003 + int64(k)*10_007 + int64(m)
				mut := Mutate(base, kind, seed)
				stats.Mutants++
				ks.Mutants++
				rejected, err := h.CheckMutant(ctx, mut)
				switch {
				case err != nil && ctx.Err() != nil:
					return stats, ctx.Err()
				case err != nil:
					ks.Escapes++
					stats.Escapes = append(stats.Escapes, Escape{
						Kind: kind, Seed: seed, Base: b, Detail: err.Error(),
					})
				case rejected:
					stats.Rejected++
					ks.Rejected++
				default:
					stats.Contained++
					ks.Contained++
				}
			}
		}
	}
	return stats, nil
}

// CheckMutant checks the soundness invariant on one image: verify it,
// and if it is accepted, execute it in the sandbox under several
// randomized machine states. It returns rejected == true when the
// checker killed the mutant, and a non-nil error exactly when the
// invariant is violated — the image was accepted and its simulation
// escaped the sandbox.
func (h *Harness) CheckMutant(ctx context.Context, img []byte) (rejected bool, err error) {
	valid, pairJmp, rep := h.Checker.AnalyzeContext(ctx, img, core.VerifyOptions{Workers: h.Workers})
	if rep.Interrupted() {
		return false, rep.Err()
	}
	if h.CrossCheck {
		if err := h.crossCheck(ctx, img, rep); err != nil {
			return false, err
		}
	}
	if !rep.Safe {
		return true, nil
	}
	for seed := 0; seed < h.simSeeds(); seed++ {
		if err := h.contained(img, valid, pairJmp, int64(seed)); err != nil {
			return false, err
		}
	}
	return false, nil
}

// crossCheck reruns img under the reference engine and asserts its
// report is byte-identical to the default run's: same verdict, same
// violation list (offset, kind, detail, window), same uncapped total.
// Any divergence is a bug in the fused product automaton (or in the
// fusion itself) and fails the campaign like an escape would.
func (h *Harness) crossCheck(ctx context.Context, img []byte, got *core.Report) error {
	ref := h.Checker.VerifyContext(ctx, img, core.VerifyOptions{
		Workers: h.Workers, Engine: core.EngineReference,
	})
	if ref.Interrupted() {
		return ref.Err()
	}
	if got.Safe != ref.Safe || got.Total != ref.Total ||
		!reflect.DeepEqual(got.Violations, ref.Violations) {
		return fmt.Errorf("fused/reference divergence: fused safe=%v total=%d %+v, reference safe=%v total=%d %+v",
			got.Safe, got.Total, got.Violations, ref.Safe, ref.Total, ref.Violations)
	}
	return nil
}

// contained executes an accepted image from a randomized start state
// and asserts, at every step, the executable form of the paper's
// safety theorem: the PC rests only on checker-validated boundaries
// (or the jump half of a masked pair reached by fall-through from its
// mask), the segment registers never change, and — exactly, via the
// memory's nonzero-byte walk — no write lands outside the code image
// and the data segment window.
func (h *Harness) contained(img []byte, valid, pairJmp []bool, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	st := machine.New()
	for _, s := range []x86.SegReg{x86.ES, x86.SS, x86.DS, x86.FS, x86.GS} {
		st.SegBase[s] = dataBase
		st.SegLimit[s] = dataLim
		st.SegSel[s] = 0x2b
	}
	st.SegBase[x86.CS] = codeBase
	st.SegLimit[x86.CS] = uint32(len(img) - 1)
	st.SegSel[x86.CS] = 0x23
	st.Mem.WriteBytes(codeBase, img)
	for r := range st.Regs {
		st.Regs[r] = uint32(rng.Intn(1 << 16))
	}
	st.Regs[x86.ESP] = 0x8000
	st.PC = 0
	initSel, initBase, initLimit := st.SegSel, st.SegBase, st.SegLimit

	oracleBits := make([]byte, 64)
	rng.Read(oracleBits)
	s := h.simulator(st)
	s.Oracle = &rtl.StreamOracle{Bits: oracleBits}

	prevPC := uint32(0xffffffff)
	for step := 0; step < h.maxSteps(); step++ {
		pc := st.PC
		if pc >= uint32(len(img)) {
			break // fetch beyond the CS limit faults: a safe halt
		}
		if !valid[pc] {
			if !pairJmp[pc] {
				return fmt.Errorf("step %d: pc %#x is not a checker-validated boundary", step, pc)
			}
			if prevPC != pc-3 {
				return fmt.Errorf("step %d: pair jump at %#x reached from %#x, not its mask", step, pc, prevPC)
			}
		}
		prevPC = pc
		if err := s.Step(); err != nil {
			break // traps, unsupported instructions and contained panics are safe halts
		}
		if st.SegSel != initSel || st.SegBase != initBase || st.SegLimit != initLimit {
			return fmt.Errorf("step %d: segment state changed during execution", step)
		}
	}
	// Code immutability and exact write confinement.
	if got := st.Mem.ReadBytes(codeBase, len(img)); !bytes.Equal(got, img) {
		return fmt.Errorf("code bytes changed during execution")
	}
	var escape error
	st.Mem.Nonzero(func(addr uint32, b byte) bool {
		inCode := addr >= codeBase && addr < codeBase+uint32(len(img))
		inData := addr >= dataBase && addr <= dataBase+dataLim
		if !inCode && !inData {
			escape = fmt.Errorf("memory write escaped the sandbox at %#x (byte %#x)", addr, b)
			return false
		}
		return true
	})
	return escape
}

// CheckTables corrupts the serialized DFA table bundle n times and
// asserts the loader fails closed: every corruption either fails to
// load (the CRC, bounds and shape checks catch it) or — for mutations
// the checks cannot distinguish from the original, e.g. a flip that
// cancels itself — produces a checker whose verdicts on the probe
// images agree with the pristine checker. It returns how many
// corruptions the loader rejected and how many loaded cleanly; err is
// non-nil only on a fail-open: a corrupted bundle that loaded AND
// changed a verdict.
func CheckTables(tables []byte, probes [][]byte, pristine *core.Checker, n int, baseSeed int64) (rejectedLoads, cleanLoads int, err error) {
	want := make([]bool, len(probes))
	for i, p := range probes {
		want[i] = pristine.Verify(p)
	}
	kinds := []Kind{BitFlip, ByteSplice, Truncate}
	for m := 0; m < n; m++ {
		seed := baseSeed + int64(m)
		mut := Mutate(tables, kinds[m%len(kinds)], seed)
		c, lerr := core.NewCheckerFromTables(bytes.NewReader(mut))
		if lerr != nil {
			rejectedLoads++
			continue
		}
		cleanLoads++
		for i, p := range probes {
			if c.Verify(p) != want[i] {
				return rejectedLoads, cleanLoads, fmt.Errorf(
					"table corruption (kind %v, seed %d) loaded cleanly and flipped the verdict on probe %d",
					kinds[m%len(kinds)], seed, i)
			}
		}
	}
	return rejectedLoads, cleanLoads, nil
}

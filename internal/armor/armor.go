// Package armor is the reproduction of the paper's slow comparator: a
// verifier in the style of Zhao et al.'s ARMor, which proved the sandbox
// policy with a general-purpose program logic instead of compiled tables
// (§1: "about 2.5 hours to check a 300 instruction program").
//
// Where RockSalt matches pre-compiled DFAs, this verifier re-derives
// everything from first principles for every instruction:
//
//   - it parses with raw grammar derivatives over the full instruction
//     grammar (no DFA tables, no memoized states — the grammar is
//     re-differentiated for every single instruction);
//   - it translates the instruction to RTL and discharges per-instruction
//     verification conditions on the RTL term (no segment-register
//     writes, fall-through PC update) — the "verification condition
//     generator + abstract interpretation" step;
//   - only then does it apply the same alignment bookkeeping.
//
// The accept language on well-formed inputs matches RockSalt's policy,
// but the cost per instruction is that of symbolic machinery, which is
// what experiment E3 measures.
package armor

import (
	"rocksalt/internal/core"
	"rocksalt/internal/grammar"
	"rocksalt/internal/policy"
	"rocksalt/internal/semanticsutil"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/semantics"
)

// Verify checks the default NaCl-32 sandbox policy symbolically. It is
// deliberately table-free; see the package comment.
func Verify(code []byte) bool {
	return VerifyPolicy(code, policy.NaCl(), nil)
}

// VerifyPolicy checks code against an arbitrary policy spec with the
// same symbolic machinery: the spec's mask encoding, bundle size,
// call-alignment rule, guard region and banned classes replace the
// NaCl-32 constants, but every instruction still goes through fresh
// grammar derivatives and RTL verification conditions. entries
// whitelists out-of-image direct-jump targets (nil rejects them all).
// An invalid spec rejects every image.
func VerifyPolicy(code []byte, spec policy.Spec, entries map[uint32]bool) bool {
	norm, err := spec.Normalize()
	if err != nil {
		return false
	}
	pp := newPolicyParams(norm, entries)

	size := len(code)
	valid := make([]bool, size)
	target := make([]bool, size)
	top := decode.TopGrammar()

	pos := 0
	for pos < size {
		valid[pos] = true
		inst, n, err := parseRaw(top, code[pos:])
		if err != nil {
			return false
		}
		switch {
		case pp.isMask(inst, n):
			// Try the masked-pair rule: the next instruction must be an
			// indirect jump or call through the same register.
			jmp, m, err := parseRaw(top, code[pos+n:])
			if err != nil || !isIndirectThrough(jmp, maskReg(inst)) {
				// A lone mask is still a legal AND.
				if !checkDataVCs(inst, uint32(pos), n) {
					return false
				}
				pos += n
				continue
			}
			if pp.alignedCalls && jmp.Op == x86.CALL && (pos+n+m)%pp.bundle != 0 {
				return false
			}
			pos += n + m
		case pp.safeInst(inst):
			if !checkDataVCs(inst, uint32(pos), n) {
				return false
			}
			pos += n
		case inst.Rel && (inst.Op == x86.JMP || inst.Op == x86.Jcc || inst.Op == x86.CALL) &&
			inst.Prefix == (x86.Prefix{}):
			end := pos + n
			if pp.alignedCalls && inst.Op == x86.CALL && end%pp.bundle != 0 {
				return false
			}
			t := int64(end) + int64(int32(inst.Args[0].(x86.Imm).Val))
			if t >= 0 && t < int64(size) {
				target[t] = true
			} else if !pp.allowedEntry(uint32(t)) {
				return false
			}
			pos = end
		default:
			return false
		}
	}
	for i := 0; i < size; i++ {
		if target[i] && !valid[i] {
			return false
		}
		if i%pp.bundle == 0 && !valid[i] {
			return false
		}
	}
	return true
}

// policyParams restates a normalized spec in the terms this verifier's
// checks are written in (decoded immediates and register sets rather
// than grammars).
type policyParams struct {
	bundle       int
	maskLen      int
	maskImm      uint32 // as decoded: sign-extended for the imm8 form
	maskable     map[x86.Reg]bool
	banString    bool
	banRep       bool
	banOpsize16  bool
	alignedCalls bool
	guard        uint32
	entries      map[uint32]bool
}

func newPolicyParams(norm policy.Spec, entries map[uint32]bool) *policyParams {
	pp := &policyParams{
		bundle:       norm.BundleSize,
		maskLen:      norm.MaskLen(),
		maskImm:      norm.MaskImm(),
		maskable:     map[x86.Reg]bool{},
		alignedCalls: norm.AlignedCalls,
		guard:        norm.GuardCutoff,
		entries:      entries,
	}
	if norm.MaskWidth == 8 {
		// The decoder sign-extends the AND imm8 to 32 bits.
		pp.maskImm = uint32(int32(int8(norm.MaskImm())))
	}
	for _, r := range norm.MaskRegisters() {
		pp.maskable[r] = true
	}
	for _, c := range norm.BannedClasses {
		switch c {
		case "string":
			pp.banString = true
			pp.banRep = true // REP is only legal before the (now banned) string ops
		case "rep-prefix":
			pp.banRep = true
		case "opsize16":
			pp.banOpsize16 = true
		}
	}
	return pp
}

// safeInst layers the spec's banned classes on top of the base policy
// predicate.
func (pp *policyParams) safeInst(i x86.Inst) bool {
	if !core.SafeInst(i) {
		return false
	}
	if pp.banString && isStringInst(i.Op) {
		return false
	}
	if pp.banRep && (i.Prefix.Rep || i.Prefix.RepN) {
		return false
	}
	if pp.banOpsize16 && i.Prefix.OpSize {
		return false
	}
	return true
}

// isStringInst reports the REP-able string operations — the "string"
// banned class.
func isStringInst(op x86.Op) bool {
	switch op {
	case x86.MOVS, x86.STOS, x86.LODS, x86.SCAS, x86.CMPS:
		return true
	}
	return false
}

// allowedEntry reports whether an out-of-image direct-jump target is
// permitted: whitelisted and not inside the guard region.
func (pp *policyParams) allowedEntry(t uint32) bool {
	if pp.guard != 0 && t < pp.guard {
		return false
	}
	return pp.entries[t]
}

// parseRaw decodes one instruction with fresh grammar derivatives — the
// general, expensive path (no DFA, no memoization).
func parseRaw(top *grammar.Grammar, code []byte) (x86.Inst, int, error) {
	v, n, err := grammar.ParseBytes(top, code, decode.MaxInstLen)
	if err != nil {
		return x86.Inst{}, 0, err
	}
	return v.(x86.Inst), n, nil
}

// isMask recognizes the policy's masking AND in its canonical encoding
// (the exact length the compiled grammars accept) through a maskable
// register.
func (pp *policyParams) isMask(i x86.Inst, n int) bool {
	if i.Op != x86.AND || !i.W || n != pp.maskLen || i.Prefix != (x86.Prefix{}) {
		return false
	}
	r, ok := i.Args[0].(x86.RegOp)
	if !ok || !pp.maskable[r.Reg] {
		return false
	}
	imm, ok := i.Args[1].(x86.Imm)
	return ok && imm.Val == pp.maskImm
}

func maskReg(i x86.Inst) x86.Reg { return i.Args[0].(x86.RegOp).Reg }

// isIndirectThrough recognizes JMP/CALL through exactly register r.
func isIndirectThrough(i x86.Inst, r x86.Reg) bool {
	if (i.Op != x86.JMP && i.Op != x86.CALL) || i.Rel || i.Far || i.Prefix != (x86.Prefix{}) {
		return false
	}
	ro, ok := i.Args[0].(x86.RegOp)
	return ok && ro.Reg == r
}

// checkDataVCs translates the instruction to RTL and discharges the
// paper's property (1) and (3) for NoControlFlow instructions: the RTL
// term contains no write to a segment location, and its PC effect is
// exactly pc+len.
func checkDataVCs(inst x86.Inst, pc uint32, length int) bool {
	prog, err := semantics.Translate(inst, pc, length)
	if err != nil {
		return false
	}
	if !semanticsutil.NoSegmentWrites(prog) {
		return false
	}
	if semanticsutil.TrapsUnconditionally(prog) {
		// A guaranteed fault (e.g. ENTER with an unmodeled nesting level)
		// is a safe halt: control never leaves the instruction.
		return true
	}
	switch inst.Op {
	case x86.MOVS, x86.STOS, x86.LODS, x86.SCAS, x86.CMPS:
		// REP forms either advance or stay on the instruction.
		return semanticsutil.PCWritesConfined(prog, map[uint32]bool{
			pc: true, pc + uint32(length): true,
		})
	}
	return semanticsutil.FallThroughOnly(prog, pc+uint32(length))
}

// Package armor is the reproduction of the paper's slow comparator: a
// verifier in the style of Zhao et al.'s ARMor, which proved the sandbox
// policy with a general-purpose program logic instead of compiled tables
// (§1: "about 2.5 hours to check a 300 instruction program").
//
// Where RockSalt matches pre-compiled DFAs, this verifier re-derives
// everything from first principles for every instruction:
//
//   - it parses with raw grammar derivatives over the full instruction
//     grammar (no DFA tables, no memoized states — the grammar is
//     re-differentiated for every single instruction);
//   - it translates the instruction to RTL and discharges per-instruction
//     verification conditions on the RTL term (no segment-register
//     writes, fall-through PC update) — the "verification condition
//     generator + abstract interpretation" step;
//   - only then does it apply the same alignment bookkeeping.
//
// The accept language on well-formed inputs matches RockSalt's policy,
// but the cost per instruction is that of symbolic machinery, which is
// what experiment E3 measures.
package armor

import (
	"rocksalt/internal/core"
	"rocksalt/internal/grammar"
	"rocksalt/internal/semanticsutil"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/semantics"
)

// Verify checks the NaCl sandbox policy symbolically. It is deliberately
// table-free; see the package comment.
func Verify(code []byte) bool {
	size := len(code)
	valid := make([]bool, size)
	target := make([]bool, size)
	top := decode.TopGrammar()

	pos := 0
	for pos < size {
		valid[pos] = true
		inst, n, err := parseRaw(top, code[pos:])
		if err != nil {
			return false
		}
		switch {
		case isMask(inst, n):
			// Try the masked-pair rule: the next instruction must be an
			// indirect jump or call through the same register.
			jmp, m, err := parseRaw(top, code[pos+n:])
			if err != nil || !isIndirectThrough(jmp, maskReg(inst)) {
				// A lone mask is still a legal AND.
				if !checkDataVCs(inst, uint32(pos), n) {
					return false
				}
				pos += n
				continue
			}
			pos += n + m
		case core.SafeInst(inst):
			if !checkDataVCs(inst, uint32(pos), n) {
				return false
			}
			pos += n
		case inst.Rel && (inst.Op == x86.JMP || inst.Op == x86.Jcc || inst.Op == x86.CALL) &&
			inst.Prefix == (x86.Prefix{}):
			t := int64(pos+n) + int64(int32(inst.Args[0].(x86.Imm).Val))
			if t < 0 || t >= int64(size) {
				return false
			}
			target[t] = true
			pos += n
		default:
			return false
		}
	}
	for i := 0; i < size; i++ {
		if target[i] && !valid[i] {
			return false
		}
		if i%core.BundleSize == 0 && !valid[i] {
			return false
		}
	}
	return true
}

// parseRaw decodes one instruction with fresh grammar derivatives — the
// general, expensive path (no DFA, no memoization).
func parseRaw(top *grammar.Grammar, code []byte) (x86.Inst, int, error) {
	v, n, err := grammar.ParseBytes(top, code, decode.MaxInstLen)
	if err != nil {
		return x86.Inst{}, 0, err
	}
	return v.(x86.Inst), n, nil
}

// isMask recognizes the 3-byte NaCl mask: AND r, 0xffffffe0 through a
// non-ESP register.
func isMask(i x86.Inst, n int) bool {
	if i.Op != x86.AND || !i.W || n != 3 || i.Prefix != (x86.Prefix{}) {
		return false
	}
	r, ok := i.Args[0].(x86.RegOp)
	if !ok || r.Reg == x86.ESP {
		return false
	}
	imm, ok := i.Args[1].(x86.Imm)
	return ok && imm.Val == 0xffffffe0
}

func maskReg(i x86.Inst) x86.Reg { return i.Args[0].(x86.RegOp).Reg }

// isIndirectThrough recognizes JMP/CALL through exactly register r.
func isIndirectThrough(i x86.Inst, r x86.Reg) bool {
	if (i.Op != x86.JMP && i.Op != x86.CALL) || i.Rel || i.Far || i.Prefix != (x86.Prefix{}) {
		return false
	}
	ro, ok := i.Args[0].(x86.RegOp)
	return ok && ro.Reg == r
}

// checkDataVCs translates the instruction to RTL and discharges the
// paper's property (1) and (3) for NoControlFlow instructions: the RTL
// term contains no write to a segment location, and its PC effect is
// exactly pc+len.
func checkDataVCs(inst x86.Inst, pc uint32, length int) bool {
	prog, err := semantics.Translate(inst, pc, length)
	if err != nil {
		return false
	}
	if !semanticsutil.NoSegmentWrites(prog) {
		return false
	}
	if semanticsutil.TrapsUnconditionally(prog) {
		// A guaranteed fault (e.g. ENTER with an unmodeled nesting level)
		// is a safe halt: control never leaves the instruction.
		return true
	}
	switch inst.Op {
	case x86.MOVS, x86.STOS, x86.LODS, x86.SCAS, x86.CMPS:
		// REP forms either advance or stay on the instruction.
		return semanticsutil.PCWritesConfined(prog, map[uint32]bool{
			pc: true, pc + uint32(length): true,
		})
	}
	return semanticsutil.FallThroughOnly(prog, pc+uint32(length))
}

package armor_test

import (
	"math/rand"
	"testing"
	"time"

	"rocksalt/internal/armor"
	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/ncval"
)

func TestArmorAcceptsCompliant(t *testing.T) {
	gen := nacl.NewGenerator(31)
	n := 20
	if testing.Short() {
		n = 4
	}
	for i := 0; i < n; i++ {
		img, err := gen.Random(20)
		if err != nil {
			t.Fatal(err)
		}
		if !armor.Verify(img) {
			t.Fatalf("armor rejected compliant image %d", i)
		}
	}
}

func TestArmorRejectsUnsafe(t *testing.T) {
	for name, img := range nacl.UnsafeCorpus() {
		if armor.Verify(img) {
			t.Errorf("armor accepted unsafe image %q", name)
		}
	}
}

func TestArmorAgreesWithRockSalt(t *testing.T) {
	c, err := core.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	gen := nacl.NewGenerator(37)
	n := 10
	if testing.Short() {
		n = 2
	}
	for i := 0; i < n; i++ {
		img, err := gen.Random(15)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := armor.Verify(img), c.Verify(img); got != want {
			t.Fatalf("image %d: armor=%v rocksalt=%v", i, got, want)
		}
	}
}

// TestArmorIsSlow pins the cost profile the paper reports: the symbolic
// verifier is orders of magnitude slower per instruction than the DFA
// checker. We only assert a conservative 50x here to keep the test
// robust; the benchmark and experiment harness measure the real ratio.
func TestArmorIsSlow(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	gen := nacl.NewGenerator(41)
	img, err := gen.Random(300)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if !armor.Verify(img) {
		t.Fatal("armor rejected")
	}
	armorTime := time.Since(start)

	start = time.Now()
	const reps = 50
	for i := 0; i < reps; i++ {
		if !c.Verify(img) {
			t.Fatal("rocksalt rejected")
		}
	}
	rocksaltTime := time.Since(start) / reps
	ratio := float64(armorTime) / float64(rocksaltTime)
	t.Logf("armor %v vs rocksalt %v per image (ratio %.0fx)", armorTime, rocksaltTime, ratio)
	if ratio < 50 {
		t.Errorf("armor-style verifier only %.0fx slower; expected orders of magnitude", ratio)
	}
}

// TestThreeWayAgreementOnMutants is the standing regression for the bugs
// the three-way fuzzer found: all three verifiers must agree on mutated
// compliant images (rocksalt and ncval at volume, armor spot-checked
// because of its cost).
func TestThreeWayAgreementOnMutants(t *testing.T) {
	c, err := core.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	gen := nacl.NewGenerator(55)
	rng := rand.New(rand.NewSource(56))
	n := 60
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		img, err := gen.Random(12)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 1+rng.Intn(4); k++ {
			img[rng.Intn(len(img))] = byte(rng.Intn(256))
		}
		a, b, ar := c.Verify(img), ncval.Validate(img), armor.Verify(img)
		if a != b || a != ar {
			t.Fatalf("disagreement rocksalt=%v ncval=%v armor=%v on % x", a, b, ar, img)
		}
	}
	// The two concrete regressions.
	enter := append([]byte{0xc8, 0xa0, 0x65, 0xc5}, nopFill(28)...)
	if !c.Verify(enter) || !armor.Verify(enter) || !ncval.Validate(enter) {
		t.Error("ENTER with nesting level must be accepted by all three")
	}
	repnop := append([]byte{0xf2, 0x90}, nopFill(30)...)
	if c.Verify(repnop) || armor.Verify(repnop) || ncval.Validate(repnop) {
		t.Error("REPNE on a non-string op must be rejected by all three")
	}
}

func nopFill(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = 0x90
	}
	return out
}

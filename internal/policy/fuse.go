package policy

import (
	"fmt"

	"rocksalt/internal/grammar"
)

// This file builds the fused policy automaton: the product of the three
// checker DFAs (MaskedJump × NoControlFlow × DirectJump) with a tag
// byte per state recording which components accept or are still live.
// The construction lives here, in the policy compiler, because it is
// part of the grammar→tables pipeline; the engine-facing renumbering
// into class bands (and everything the hot loops consume) stays in
// internal/core, which layers on top of the raw product this file
// emits.

// Tag bits of a fused state. Accept bits are set exactly on the state
// entered by the byte that completes a component's first match, so a
// walk observes each accept bit at most once; live bits are set while
// the component can still reach an accept. Serialized in RSLT2+
// bundles, so the layout is part of the table format.
const (
	TagAccMasked  = 1 << 0
	TagAccNoCF    = 1 << 1
	TagAccDirect  = 1 << 2
	TagLiveMasked = 1 << 3
	TagLiveNoCF   = 1 << 4
	TagLiveDirect = 1 << 5

	TagAccAny  = TagAccMasked | TagAccNoCF | TagAccDirect
	TagLiveAny = TagLiveMasked | TagLiveNoCF | TagLiveDirect

	// TagMask covers every defined bit; loaders reject tags outside it.
	TagMask = TagAccAny | TagLiveAny
)

// Normalized component states for the product construction: non-negative
// values are live states of the component DFA (never accepting or
// rejecting), the rest are the three collapsed states. Each component
// only matters up to its *first* accepting state (the Figure-6 match
// stops there), so an accepting component collapses to a one-shot
// "accept now" state and then to a done sink; rejecting states are
// already sinks. With both collapses the product of the policy DFAs
// stays in the low hundreds of states before minimization.
const (
	compAccept = -1 // entered by the byte completing the first match
	compDone   = -2 // post-accept sink
	compReject = -3 // reject sink (the component's Void derivative)
)

// compStep advances one normalized component by one byte.
func compStep(d *grammar.DFA, s int, b int) int {
	switch s {
	case compAccept, compDone:
		return compDone
	case compReject:
		return compReject
	}
	t := int(d.Table[s][b])
	switch {
	case d.Accepts[t]:
		return compAccept
	case d.Rejects[t]:
		return compReject
	}
	return t
}

// FuseProduct builds the minimized fused product automaton of the three
// policy DFAs, returning its start state, per-state tag bytes, and
// transition table. The construction is deterministic: states are
// discovered breadth-first in ascending byte order and the minimizer
// numbers blocks by first occurrence, so the same components always
// fuse to the same tables — the property the embedded-bundle
// regeneration guard checks.
func FuseProduct(masked, noCF, direct *grammar.DFA) (start int, tags []uint8, table [][256]uint16, err error) {
	comps := [3]*grammar.DFA{masked, noCF, direct}
	for i, d := range comps {
		if d.Accepts[d.Start] {
			return 0, nil, nil, fmt.Errorf("policy: fusing component %d: start state accepts the empty string", i)
		}
		if d.Rejects[d.Start] {
			return 0, nil, nil, fmt.Errorf("policy: fusing component %d: start state rejects everything", i)
		}
	}

	type triple [3]int
	tag := func(t triple) uint8 {
		var g uint8
		accBits := [3]uint8{TagAccMasked, TagAccNoCF, TagAccDirect}
		liveBits := [3]uint8{TagLiveMasked, TagLiveNoCF, TagLiveDirect}
		for i, s := range t {
			switch {
			case s == compAccept:
				g |= accBits[i]
			case s >= 0:
				g |= liveBits[i]
			}
		}
		return g
	}

	first := triple{comps[0].Start, comps[1].Start, comps[2].Start}
	index := map[triple]int{first: 0}
	states := []triple{first}
	for i := 0; i < len(states); i++ {
		var row [256]uint16
		cur := states[i]
		for b := 0; b < 256; b++ {
			nxt := triple{compStep(comps[0], cur[0], b),
				compStep(comps[1], cur[1], b),
				compStep(comps[2], cur[2], b)}
			j, ok := index[nxt]
			if !ok {
				j = len(states)
				if j >= 1<<16 {
					return 0, nil, nil, fmt.Errorf("policy: fused product exceeds %d states", 1<<16)
				}
				index[nxt] = j
				states = append(states, nxt)
			}
			row[b] = uint16(j)
		}
		table = append(table, row)
	}
	tags = make([]uint8, len(states))
	for i, t := range states {
		tags[i] = tag(t)
	}

	mStart, mTags, mTable := grammar.MinimizeTaggedDFA(0, tags, table)
	return mStart, mTags, mTable, nil
}

// Package policy is the runtime policy compiler: the full grammar →
// derivative-DFA → fused-product pipeline behind the RockSalt checker,
// driven by a declarative PolicySpec instead of being frozen into
// cmd/dfagen at build time. The paper's central idea is that a sandbox
// policy is *data* — regular grammars compiled to DFAs — and this
// package makes that literal: a Spec names the mask discipline, bundle
// size, call/return rules, guard region and banned instruction classes,
// and Compile turns it into the three policy DFAs the core engine
// consumes. Compiling the default NaCl spec reproduces, byte for byte,
// the tables cmd/dfagen embeds (the regeneration guard holds the two
// paths identical).
package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/bits"

	"rocksalt/internal/vcache"
	"rocksalt/internal/x86"
)

// Spec is the declarative sandbox policy description. The zero value of
// every optional field means "the NaCl default"; Normalize fills the
// defaults in and Validate rejects contradictory combinations. Specs
// are written as JSON (see ParseSpec), e.g.:
//
//	{
//	  "name":         "reins-16",
//	  "bundle_size":  16,
//	  "mask_width":   32,
//	  "code_limit":   268435456,
//	  "guard_cutoff": 65536,
//	  "banned_classes": ["string"]
//	}
type Spec struct {
	// Name labels the policy in reports and benchmarks. It does not
	// affect the compiled tables or the fingerprint.
	Name string `json:"name"`
	// BundleSize is the alignment quantum: computed jump targets must be
	// multiples of it and no instruction may straddle a multiple. Must be
	// a power of two in [16, 4096]; masks of width 8 additionally require
	// it to be at most 128 (the sign-extended imm8 cannot express more).
	BundleSize int `json:"bundle_size"`
	// MaskWidth selects the masking AND's immediate width: 8 (the NaCl
	// "AND r, imm8" whose sign extension clears the low bits — the
	// default) or 32 (a REINS-style "AND r, imm32" that additionally
	// confines the target below CodeLimit).
	MaskWidth int `json:"mask_width,omitempty"`
	// CodeLimit is the power-of-two ceiling of the sandboxed code region,
	// required exactly when MaskWidth is 32: the mask immediate becomes
	// (CodeLimit-1) &^ (BundleSize-1).
	CodeLimit uint32 `json:"code_limit,omitempty"`
	// MaskRegs are the registers a masked jump may go through, by name
	// ("eax".."edi"). Empty means every general register that is not a
	// scratch register, in encoding order — the paper's list.
	MaskRegs []string `json:"mask_regs,omitempty"`
	// ScratchRegs are registers excluded from masked jumps. Empty means
	// ["esp"]; esp is always scratch (masking the stack pointer is
	// unsound) and listing it in MaskRegs is a validation error.
	ScratchRegs []string `json:"scratch_regs,omitempty"`
	// AlignedCalls additionally requires every call to end exactly at a
	// bundle boundary, so return addresses are always bundle-aligned.
	AlignedCalls bool `json:"aligned_calls,omitempty"`
	// GuardCutoff, when nonzero, declares [0, GuardCutoff) a guard
	// region: out-of-image direct-jump targets below it are rejected even
	// when whitelisted as entry points (the REINS low-memory guard).
	GuardCutoff uint32 `json:"guard_cutoff,omitempty"`
	// BannedClasses removes instruction classes from the safe set:
	// "string" (the string operations and their REP forms), "rep-prefix"
	// (REP/REPNE prefixes only), "opsize16" (the 0x66 operand-size
	// override).
	BannedClasses []string `json:"banned_classes,omitempty"`
}

// regNames maps the spec's register names to encodings; ESP is absent
// on purpose (it can never be a mask register).
var regNames = map[string]x86.Reg{
	"eax": x86.EAX, "ecx": x86.ECX, "edx": x86.EDX, "ebx": x86.EBX,
	"esp": x86.ESP, "ebp": x86.EBP, "esi": x86.ESI, "edi": x86.EDI,
}

// bannedClassNames is the closed set Validate accepts.
var bannedClassNames = map[string]bool{
	"string": true, "rep-prefix": true, "opsize16": true,
}

// NaCl returns the default policy: the paper's NaCl sandbox (32-byte
// bundles, AND r,imm8 masks through every register but esp). Compiling
// it reproduces the embedded table bundle byte-identically.
func NaCl() Spec {
	return Spec{Name: "nacl-32", BundleSize: 32}
}

// NaCl16 returns the 16-byte-bundle NaCl variant — the padding/overhead
// tradeoff point studied by Emamdoost & McCamant: denser images, a
// 0xf0 mask, and twice as many alignment constraints.
func NaCl16() Spec {
	return Spec{Name: "nacl-16", BundleSize: 16}
}

// REINS returns a REINS-style policy: 16-byte chunks, a 32-bit AND mask
// confining computed targets below a 256 MiB code ceiling, a 64 KiB
// low-memory guard region, and the string operations banned. The IAT
// (import address table) call forms of full REINS rewrite through
// trusted trampolines and are not modeled here; this is the non-IAT
// subset expressible as a pure image policy.
func REINS() Spec {
	return Spec{
		Name:          "reins-16",
		BundleSize:    16,
		MaskWidth:     32,
		CodeLimit:     1 << 28,
		GuardCutoff:   1 << 16,
		BannedClasses: []string{"string"},
	}
}

// ParseSpec decodes a JSON policy spec, rejecting unknown fields, and
// validates it. The returned spec is normalized.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("policy: parsing spec: %w", err)
	}
	return s.Normalize()
}

// Normalize validates the spec and fills in the defaults, returning the
// canonical form Compile and Fingerprint work from.
func (s Spec) Normalize() (Spec, error) {
	if s.Name == "" {
		s.Name = "custom"
	}
	if s.MaskWidth == 0 {
		s.MaskWidth = 8
	}
	if s.MaskWidth != 8 && s.MaskWidth != 32 {
		return Spec{}, fmt.Errorf("policy: mask_width must be 8 or 32, not %d", s.MaskWidth)
	}
	b := s.BundleSize
	if b < 16 || b > 4096 || bits.OnesCount(uint(b)) != 1 {
		return Spec{}, fmt.Errorf("policy: bundle_size must be a power of two in [16, 4096], not %d", b)
	}
	if s.MaskWidth == 8 && b > 128 {
		return Spec{}, fmt.Errorf("policy: bundle_size %d needs mask_width 32 (a sign-extended imm8 reaches at most 128)", b)
	}
	if s.MaskWidth == 8 && s.CodeLimit != 0 {
		return Spec{}, fmt.Errorf("policy: code_limit requires mask_width 32 (an imm8 mask cannot bound the code region)")
	}
	if s.MaskWidth == 32 {
		cl := s.CodeLimit
		if cl == 0 {
			return Spec{}, fmt.Errorf("policy: mask_width 32 requires code_limit")
		}
		if bits.OnesCount32(cl) != 1 || int64(cl) <= int64(b) {
			return Spec{}, fmt.Errorf("policy: code_limit must be a power of two above bundle_size %d, not %#x", b, cl)
		}
	}
	if s.GuardCutoff != 0 && s.GuardCutoff%uint32(b) != 0 {
		return Spec{}, fmt.Errorf("policy: guard_cutoff %#x is not bundle-aligned", s.GuardCutoff)
	}
	if len(s.ScratchRegs) == 0 {
		s.ScratchRegs = []string{"esp"}
	}
	scratch := map[x86.Reg]bool{x86.ESP: true} // esp is always scratch
	for _, n := range s.ScratchRegs {
		r, ok := regNames[n]
		if !ok {
			return Spec{}, fmt.Errorf("policy: unknown scratch register %q", n)
		}
		scratch[r] = true
	}
	if len(s.MaskRegs) == 0 {
		s.MaskRegs = nil
		for r := x86.EAX; r <= x86.EDI; r++ {
			if !scratch[r] {
				s.MaskRegs = append(s.MaskRegs, r.String())
			}
		}
	}
	if len(s.MaskRegs) == 0 {
		return Spec{}, fmt.Errorf("policy: every register is scratch; no register left for masked jumps")
	}
	seen := map[x86.Reg]bool{}
	for _, n := range s.MaskRegs {
		r, ok := regNames[n]
		if !ok {
			return Spec{}, fmt.Errorf("policy: unknown mask register %q", n)
		}
		if r == x86.ESP {
			return Spec{}, fmt.Errorf("policy: esp cannot be a mask register (masking the stack pointer is unsound)")
		}
		if scratch[r] {
			return Spec{}, fmt.Errorf("policy: register %q is both a mask register and a scratch register", n)
		}
		if seen[r] {
			return Spec{}, fmt.Errorf("policy: duplicate mask register %q", n)
		}
		seen[r] = true
	}
	for _, c := range s.BannedClasses {
		if !bannedClassNames[c] {
			return Spec{}, fmt.Errorf("policy: unknown banned class %q (want string, rep-prefix or opsize16)", c)
		}
	}
	return s, nil
}

// MaskRegisters returns the mask registers as encodings, in spec
// order. The spec must be normalized.
func (s Spec) MaskRegisters() []x86.Reg {
	out := make([]x86.Reg, len(s.MaskRegs))
	for i, n := range s.MaskRegs {
		out[i] = regNames[n]
	}
	return out
}

// banned reports whether the named class is banned.
func (s Spec) banned(class string) bool {
	for _, c := range s.BannedClasses {
		if c == class {
			return true
		}
	}
	return false
}

// MaskImm is the masking AND's immediate value under the normalized
// spec: for width 8 the byte whose sign extension is ^(BundleSize-1);
// for width 32 the full alignment-and-region mask.
func (s Spec) MaskImm() uint32 {
	if s.MaskWidth == 32 {
		return (s.CodeLimit - 1) &^ uint32(s.BundleSize-1)
	}
	return uint32(0x100-s.BundleSize) & 0xff
}

// MaskLen is the encoded size of the masking AND: 3 bytes for the imm8
// form (0x83 modrm imm8), 6 for the imm32 form (0x81 modrm imm32).
func (s Spec) MaskLen() int {
	if s.MaskWidth == 32 {
		return 6
	}
	return 3
}

// Fingerprint is the content hash of the normalized spec, excluding the
// display name: two specs with equal fingerprints compile to the same
// policy. It keys the compile memoization; verdict-cache separation
// additionally rests on core's configKey, which hashes the compiled
// tables and engine parameters themselves.
func (s Spec) Fingerprint() vcache.Key {
	c := s
	c.Name = ""
	buf, err := json.Marshal(c)
	if err != nil {
		panic("policy: marshaling a normalized spec cannot fail: " + err.Error())
	}
	return vcache.Sum("rocksalt/policy-spec", buf)
}

package policy

import (
	"math/rand"
	"sync"

	"rocksalt/internal/grammar"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
)

// This file builds the three policy grammars from a normalized Spec.
// For the default NaCl spec every constructor call below reproduces the
// exact grammar trees the pre-refactor builder produced, in the same
// order — the byte-identity of the runtime-compiled tables with the
// embedded bundle (asserted by the regeneration guard) depends on it.

// maskP is the paper's nacl_MASK_p generalized over the spec: the
// pattern for "AND r, imm" with the spec's mask immediate — opcode
// 0x83 /4 imm8 for width 8, 0x81 /4 imm32 (little-endian) for width 32.
func maskP(s Spec, r x86.Reg) *grammar.Grammar {
	if s.MaskWidth == 32 {
		imm := s.MaskImm()
		immG := grammar.Then(grammar.BitsValue(8, uint64(imm&0xff)),
			grammar.Then(grammar.BitsValue(8, uint64(imm>>8&0xff)),
				grammar.Then(grammar.BitsValue(8, uint64(imm>>16&0xff)),
					grammar.BitsValue(8, uint64(imm>>24&0xff)))))
		return grammar.Then(grammar.Bits("1000 0001"),
			grammar.Then(grammar.Bits("11"),
				grammar.Then(grammar.Bits("100"),
					grammar.Then(grammar.BitsValue(3, uint64(r)), immG))))
	}
	return grammar.Then(grammar.Bits("1000 0011"),
		grammar.Then(grammar.Bits("11"),
			grammar.Then(grammar.Bits("100"),
				grammar.Then(grammar.BitsValue(3, uint64(r)),
					grammar.BitsValue(8, uint64(s.MaskImm()))))))
}

// jmpP is nacl_JMP_p: "JMP r" (0xFF /4, mod=11).
func jmpP(r x86.Reg) *grammar.Grammar {
	return grammar.Then(grammar.Bits("1111 1111"),
		grammar.Then(grammar.Bits("11"),
			grammar.Then(grammar.Bits("100"), grammar.BitsValue(3, uint64(r)))))
}

// callP is nacl_CALL_p: "CALL r" (0xFF /2, mod=11).
func callP(r x86.Reg) *grammar.Grammar {
	return grammar.Then(grammar.Bits("1111 1111"),
		grammar.Then(grammar.Bits("11"),
			grammar.Then(grammar.Bits("010"), grammar.BitsValue(3, uint64(r)))))
}

// jmpPair is nacljmp_p: a mask of r immediately followed by an indirect
// jump or call through the same r.
func jmpPair(s Spec, r x86.Reg) *grammar.Grammar {
	return grammar.Cat(maskP(s, r), grammar.Alt(jmpP(r), callP(r)))
}

// MaskedJumpGrammar is nacljmp_mask under the spec: the union of masked
// pairs over the spec's mask registers.
func MaskedJumpGrammar(s Spec) *grammar.Grammar {
	var alts []*grammar.Grammar
	for _, r := range s.MaskRegisters() {
		alts = append(alts, jmpPair(s, r))
	}
	return grammar.Alt(alts...)
}

// DirectJumpGrammar matches exactly the direct, PC-relative control
// transfers the policy allows: JMP rel8/rel32, Jcc rel8/rel32, and CALL
// rel32, all unprefixed. No spec knob varies it; target legality
// (alignment, guard region, entry whitelist) is the engine's job.
func DirectJumpGrammar() *grammar.Grammar {
	rel8 := grammar.AnyByte()
	rel32 := grammar.Then(grammar.AnyByte(),
		grammar.Then(grammar.AnyByte(), grammar.Then(grammar.AnyByte(), grammar.AnyByte())))
	return grammar.Alt(
		grammar.Then(grammar.LitByte(0xeb), rel8),
		grammar.Then(grammar.LitByte(0xe9), rel32),
		grammar.Then(grammar.LitByte(0xe8), rel32),
		grammar.Then(grammar.Bits("0111"), grammar.Then(grammar.Field(4), rel8)),
		grammar.Then(grammar.LitByte(0x0f),
			grammar.Then(grammar.Bits("1000"), grammar.Then(grammar.Field(4), rel32))),
	)
}

// SafeInst is the policy predicate on abstract syntax: an instruction
// the sandbox can always allow. It is the semantic counterpart of the
// NoControlFlow grammar, used both to build that grammar (forms are
// classified by sampling) and as the specification in the inversion-
// principle tests. Banned instruction classes are layered on top by
// NoControlFlowGrammar, not here.
func SafeInst(i x86.Inst) bool {
	if i.IsControlFlow() || i.Far {
		return false
	}
	switch i.Op {
	case x86.IN, x86.OUT, x86.INS, x86.OUTS, x86.HLT, x86.BOUND,
		x86.LDS, x86.LES, x86.LSS, x86.LFS, x86.LGS, x86.UD2, x86.BAD:
		return false
	}
	for _, a := range i.Args {
		if _, isSeg := a.(x86.SegOp); isSeg {
			return false
		}
	}
	if i.Prefix.Seg != nil || i.Prefix.AddrSize || i.Prefix.Lock {
		return false
	}
	// REP/REPNE are meaningful (and allowed) only on string operations.
	if (i.Prefix.Rep || i.Prefix.RepN) && !isStringOp(i.Op) {
		return false
	}
	return true
}

// isStringOp reports the REP-able string operations.
func isStringOp(op x86.Op) bool {
	switch op {
	case x86.MOVS, x86.STOS, x86.LODS, x86.SCAS, x86.CMPS:
		return true
	}
	return false
}

// classified memoizes classifyForms per operand-size mode: the sampling
// pass over every instruction form is the expensive part of grammar
// construction and is identical on every call (the sampler is reseeded
// deterministically), so compiling several specs pays it once.
var classified [2]struct {
	once          sync.Once
	safe, strings []*grammar.Grammar
}

// classifyForms splits the decoder's instruction forms into the safe
// subset by sampling: each form is homogeneous (one constructor), so a
// handful of samples decides its class. The deterministic seed keeps the
// generated DFAs reproducible. The returned slices are shared and must
// not be mutated.
func classifyForms(opsize16 bool) (safe, strings []*grammar.Grammar) {
	m := &classified[0]
	if opsize16 {
		m = &classified[1]
	}
	m.once.Do(func() {
		s := grammar.NewSampler(rand.New(rand.NewSource(1)))
		for _, form := range decode.InstructionForms(opsize16) {
			var inst x86.Inst
			ok := false
			allSafe, allString := true, true
			for k := 0; k < 8; k++ {
				_, v, sampled := s.Sample(form)
				if !sampled {
					break
				}
				ok = true
				inst = v.(x86.Inst)
				if !SafeInst(inst) {
					allSafe = false
				}
				if !isStringOp(inst.Op) {
					allString = false
				}
			}
			if !ok {
				panic("policy: unsampleable instruction form")
			}
			if allSafe {
				m.safe = append(m.safe, form)
				if allString {
					m.strings = append(m.strings, form)
				}
			}
		}
	})
	return m.safe, m.strings
}

// dropForms returns safe without the members of ban (pointer identity),
// leaving the shared input slices untouched.
func dropForms(safe, ban []*grammar.Grammar) []*grammar.Grammar {
	banned := make(map[*grammar.Grammar]bool, len(ban))
	for _, g := range ban {
		banned[g] = true
	}
	out := make([]*grammar.Grammar, 0, len(safe))
	for _, g := range safe {
		if !banned[g] {
			out = append(out, g)
		}
	}
	return out
}

// NoControlFlowGrammar matches one legal non-control-flow instruction
// under the spec: a safe instruction form, optionally under an
// operand-size override, or a REP/REPN-prefixed string operation —
// minus the spec's banned classes. Lock prefixes, segment overrides and
// 16-bit addressing are rejected outright.
func NoControlFlowGrammar(s Spec) *grammar.Grammar {
	banStr := s.banned("string")
	banRep := banStr || s.banned("rep-prefix")
	banO16 := s.banned("opsize16")
	safe32, strings32 := classifyForms(false)
	if banStr {
		safe32 = dropForms(safe32, strings32)
	}
	var alts []*grammar.Grammar
	alts = append(alts, safe32...)
	if !banO16 {
		safe16, strings16 := classifyForms(true)
		if banStr {
			safe16 = dropForms(safe16, strings16)
		}
		alts = append(alts, grammar.Then(grammar.LitByte(0x66), grammar.Alt(safe16...)))
	}
	if !banRep {
		alts = append(alts, grammar.Then(grammar.LitByte(0xf3), grammar.Alt(strings32...)))
		alts = append(alts, grammar.Then(grammar.LitByte(0xf2), grammar.Alt(strings32...)))
	}
	return grammar.Alt(alts...)
}

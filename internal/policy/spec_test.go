package policy

import (
	"strings"
	"testing"

	"rocksalt/internal/x86"
)

// TestNormalizeDefaults pins the normalized form of the default spec:
// the paper's register list (everything but esp, in encoding order),
// width 8, esp scratch.
func TestNormalizeDefaults(t *testing.T) {
	s, err := NaCl().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.MaskWidth != 8 || s.BundleSize != 32 {
		t.Fatalf("normalized defaults wrong: %+v", s)
	}
	want := []string{"eax", "ecx", "edx", "ebx", "ebp", "esi", "edi"}
	if len(s.MaskRegs) != len(want) {
		t.Fatalf("mask regs = %v, want %v", s.MaskRegs, want)
	}
	for i, n := range want {
		if s.MaskRegs[i] != n {
			t.Fatalf("mask regs = %v, want %v", s.MaskRegs, want)
		}
	}
	if got := s.MaskRegisters(); got[0] != x86.EAX || len(got) != 7 {
		t.Fatalf("MaskRegisters = %v", got)
	}
	if len(s.ScratchRegs) != 1 || s.ScratchRegs[0] != "esp" {
		t.Fatalf("scratch regs = %v, want [esp]", s.ScratchRegs)
	}
}

// TestNormalizeErrors is the malformed/contradictory-spec table: every
// entry must be rejected with a message mentioning the offending knob.
func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"bundle-not-pow2", Spec{BundleSize: 24}, "power of two"},
		{"bundle-too-small", Spec{BundleSize: 8}, "power of two"},
		{"bundle-too-big", Spec{BundleSize: 8192}, "power of two"},
		{"bundle-beyond-imm8", Spec{BundleSize: 256}, "mask_width 32"},
		{"bad-width", Spec{BundleSize: 32, MaskWidth: 16}, "mask_width"},
		{"code-limit-with-imm8", Spec{BundleSize: 32, CodeLimit: 1 << 20}, "code_limit requires mask_width 32"},
		{"width32-without-limit", Spec{BundleSize: 32, MaskWidth: 32}, "requires code_limit"},
		{"code-limit-not-pow2", Spec{BundleSize: 32, MaskWidth: 32, CodeLimit: 3 << 20}, "power of two"},
		{"code-limit-below-bundle", Spec{BundleSize: 64, MaskWidth: 32, CodeLimit: 32}, "above bundle_size"},
		{"guard-unaligned", Spec{BundleSize: 32, GuardCutoff: 48}, "not bundle-aligned"},
		{"unknown-scratch", Spec{BundleSize: 32, ScratchRegs: []string{"rax"}}, "unknown scratch register"},
		{"unknown-mask-reg", Spec{BundleSize: 32, MaskRegs: []string{"r8"}}, "unknown mask register"},
		{"esp-mask-reg", Spec{BundleSize: 32, MaskRegs: []string{"esp"}}, "esp cannot be a mask register"},
		{"mask-and-scratch", Spec{BundleSize: 32, MaskRegs: []string{"ebx"}, ScratchRegs: []string{"ebx"}}, "both a mask register and a scratch register"},
		{"duplicate-mask-reg", Spec{BundleSize: 32, MaskRegs: []string{"eax", "eax"}}, "duplicate mask register"},
		{"all-scratch", Spec{BundleSize: 32, ScratchRegs: []string{"eax", "ecx", "edx", "ebx", "ebp", "esi", "edi"}}, "no register left"},
		{"unknown-banned-class", Spec{BundleSize: 32, BannedClasses: []string{"sse"}}, "unknown banned class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.Normalize()
			if err == nil {
				t.Fatalf("spec %+v normalized without error", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseSpec pins the JSON surface: valid specs parse normalized,
// unknown fields and syntax errors are rejected.
func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"p","bundle_size":16}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "p" || s.BundleSize != 16 || s.MaskWidth != 8 || len(s.MaskRegs) != 7 {
		t.Fatalf("parsed spec not normalized: %+v", s)
	}
	if _, err := ParseSpec([]byte(`{"bundle_size":16,"mask_bits":8}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := ParseSpec([]byte(`{"bundle_size":24}`)); err == nil {
		t.Fatal("contradictory spec accepted")
	}
}

// TestMaskImmAndLen pins the mask encodings of the three shipped
// policies: NaCl-32 AND r,0xe0 (3 bytes), NaCl-16 AND r,0xf0, REINS
// AND r,0x0ffffff0 (6 bytes).
func TestMaskImmAndLen(t *testing.T) {
	cases := []struct {
		spec    Spec
		imm     uint32
		maskLen int
	}{
		{NaCl(), 0xe0, 3},
		{NaCl16(), 0xf0, 3},
		{REINS(), 0x0ffffff0, 6},
	}
	for _, tc := range cases {
		s, err := tc.spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if got := s.MaskImm(); got != tc.imm {
			t.Errorf("%s: MaskImm = %#x, want %#x", s.Name, got, tc.imm)
		}
		if got := s.MaskLen(); got != tc.maskLen {
			t.Errorf("%s: MaskLen = %d, want %d", s.Name, got, tc.maskLen)
		}
	}
}

// TestFingerprint: the display name must not affect the fingerprint;
// any policy-relevant knob must.
func TestFingerprint(t *testing.T) {
	a, err := NaCl().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	renamed := NaCl()
	renamed.Name = "production"
	b, err := renamed.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("renaming a spec changed its fingerprint")
	}
	c, err := NaCl16().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different bundle sizes share a fingerprint")
	}
	guarded := NaCl()
	guarded.GuardCutoff = 1 << 16
	d, err := guarded.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("guard-only spec difference not reflected in the fingerprint")
	}
}

// TestCompileMemoized: same spec returns the identical Compiled value;
// a renamed twin returns a copy carrying the new name but the same
// automata.
func TestCompileMemoized(t *testing.T) {
	a, err := Compile(NaCl())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(NaCl())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("recompiling the same spec did not hit the memo")
	}
	renamed := NaCl()
	renamed.Name = "production"
	c, err := Compile(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if c.Spec.Name != "production" {
		t.Fatalf("renamed compile kept name %q", c.Spec.Name)
	}
	if c.MaskedJump != a.MaskedJump || c.NoControlFlow != a.NoControlFlow {
		t.Fatal("renamed compile rebuilt the automata instead of sharing them")
	}
}

// TestCompileShapes pins the component DFA state counts of the default
// policy (the paper's §3.2 numbers) and sanity-checks the variants.
func TestCompileShapes(t *testing.T) {
	def, err := CompileDefault()
	if err != nil {
		t.Fatal(err)
	}
	if n := def.MaskedJump.NumStates(); n != 25 {
		t.Errorf("default MaskedJump has %d states, want 25", n)
	}
	if n := def.NoControlFlow.NumStates(); n != 46 {
		t.Errorf("default NoControlFlow has %d states, want 46", n)
	}
	if n := def.DirectJump.NumStates(); n != 8 {
		t.Errorf("default DirectJump has %d states, want 8", n)
	}
	for _, spec := range []Spec{NaCl16(), REINS()} {
		com, err := Compile(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if com.MaskedJump.NumStates() < 2 || com.NoControlFlow.NumStates() < 2 {
			t.Fatalf("%s: degenerate automata", spec.Name)
		}
		if com.SafeGrammar == nil {
			t.Fatalf("%s: missing safe grammar", spec.Name)
		}
	}
}

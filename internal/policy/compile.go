package policy

import (
	"fmt"
	"sync"

	"rocksalt/internal/grammar"
	"rocksalt/internal/vcache"
)

// Compiled is a policy run through the grammar→DFA pipeline: the three
// component automata the engine's reference path walks plus everything
// a consumer needs to parameterize the engine (the normalized spec) or
// to generate compliant images (the safe-instruction grammar, which
// the nacl toolchain samples from).
type Compiled struct {
	// Spec is the normalized spec this policy was compiled from.
	Spec Spec
	// MaskedJump, NoControlFlow and DirectJump are the three compiled
	// policy DFAs (the paper's §3 automata, under this spec).
	MaskedJump    *grammar.DFA
	NoControlFlow *grammar.DFA
	DirectJump    *grammar.DFA
	// SafeGrammar is the NoControlFlow grammar itself, kept for
	// samplers that generate compliant instruction streams.
	SafeGrammar *grammar.Grammar
	// Fingerprint is the normalized spec's content hash (see
	// Spec.Fingerprint).
	Fingerprint vcache.Key
}

// compileMemo caches Compiled values by spec fingerprint: DFA
// compilation costs ~100ms+, the results are immutable, and callers
// (benchmarks, servers holding one checker per tenant policy) routinely
// re-compile the same handful of specs.
var compileMemo sync.Map // vcache.Key -> *Compiled

// Compile runs the full pipeline for a spec: normalize, build the three
// grammars, compile each to a DFA by regex derivatives (one shared
// hash-consing context, in the fixed order MaskedJump, NoControlFlow,
// DirectJump — the order the byte-identity guard pins). Results are
// memoized by spec fingerprint.
func Compile(spec Spec) (*Compiled, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	fp := norm.Fingerprint()
	if v, ok := compileMemo.Load(fp); ok {
		c := v.(*Compiled)
		if c.Spec.Name == norm.Name {
			return c, nil
		}
		cc := *c
		cc.Spec.Name = norm.Name
		return &cc, nil
	}
	ctx := grammar.NewCtx()
	var cerr error
	compile := func(g *grammar.Grammar, name string) *grammar.DFA {
		if cerr != nil {
			return nil
		}
		d, err := ctx.CompileDFA(ctx.Strip(g), 0)
		if err != nil {
			cerr = fmt.Errorf("policy: compiling %s: %w", name, err)
			return nil
		}
		return d
	}
	safe := NoControlFlowGrammar(norm)
	c := &Compiled{
		Spec:          norm,
		MaskedJump:    compile(MaskedJumpGrammar(norm), "MaskedJump"),
		NoControlFlow: compile(safe, "NoControlFlow"),
		DirectJump:    compile(DirectJumpGrammar(), "DirectJump"),
		SafeGrammar:   safe,
		Fingerprint:   fp,
	}
	if cerr != nil {
		return nil, cerr
	}
	compileMemo.LoadOrStore(fp, c)
	return c, nil
}

// CompileDefault compiles the default NaCl spec (memoized like every
// other spec). It is the runtime twin of the embedded table bundle; the
// regeneration guard holds the two byte-identical.
func CompileDefault() (*Compiled, error) {
	return Compile(NaCl())
}

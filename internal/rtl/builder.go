package rtl

import (
	"fmt"

	"rocksalt/internal/bits"
)

// Builder is the translation monad of §2.3: it allocates fresh local
// variables, tracks their widths for early error detection, and
// accumulates the RTL sequence. Higher-level operations (multi-byte loads,
// boolean algebra on flags) are built out of the core instructions.
type Builder struct {
	instrs []Instr
	widths []int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Take returns the accumulated sequence and resets the builder.
func (b *Builder) Take() []Instr {
	out := b.instrs
	b.instrs = nil
	b.widths = nil
	return out
}

// Len reports how many RTL instructions have been emitted.
func (b *Builder) Len() int { return len(b.instrs) }

func (b *Builder) fresh(width int) Var {
	v := Var(len(b.widths))
	b.widths = append(b.widths, width)
	return v
}

// WidthOf returns the width of a builder-allocated variable.
func (b *Builder) WidthOf(v Var) int { return b.widths[v] }

func (b *Builder) emit(i Instr) { b.instrs = append(b.instrs, i) }

func (b *Builder) checkWidth(v Var, w int, ctx string) {
	if b.widths[v] != w {
		panic(fmt.Sprintf("rtl: width mismatch in %s: v%d is %d bits, want %d",
			ctx, int(v), b.widths[v], w))
	}
}

// Imm loads an immediate.
func (b *Builder) Imm(v bits.Vec) Var {
	d := b.fresh(v.Width())
	b.emit(LoadImm{Dst: d, Val: v})
	return d
}

// ImmU loads width-bit constant n.
func (b *Builder) ImmU(width int, n uint64) Var { return b.Imm(bits.New(width, n)) }

// Arith emits a binary operation; both operands must share a width.
func (b *Builder) Arith(op ArithOp, x, y Var) Var {
	b.checkWidth(y, b.widths[x], "arith")
	d := b.fresh(b.widths[x])
	b.emit(Arith{Dst: d, Op: op, A: x, B: y})
	return d
}

// Test emits a comparison yielding a 1-bit vector.
func (b *Builder) Test(op CmpOp, x, y Var) Var {
	b.checkWidth(y, b.widths[x], "test")
	d := b.fresh(1)
	b.emit(Test{Dst: d, Op: op, A: x, B: y})
	return d
}

// Get reads a machine location.
func (b *Builder) Get(loc Loc) Var {
	d := b.fresh(loc.Width())
	b.emit(GetLoc{Dst: d, Loc: loc})
	return d
}

// Set writes a machine location.
func (b *Builder) Set(loc Loc, v Var) {
	b.checkWidth(v, loc.Width(), "set "+loc.String())
	b.emit(SetLoc{Loc: loc, Src: v})
}

// Choose draws a non-deterministic value of the given width.
func (b *Builder) Choose(width int) Var {
	d := b.fresh(width)
	b.emit(Choose{Dst: d, Width: width})
	return d
}

// CastU zero-extends or truncates v to width.
func (b *Builder) CastU(width int, v Var) Var {
	if b.widths[v] == width {
		return v
	}
	d := b.fresh(width)
	b.emit(CastU{Dst: d, Src: v, Width: width})
	return d
}

// CastS sign-extends or truncates v to width.
func (b *Builder) CastS(width int, v Var) Var {
	d := b.fresh(width)
	b.emit(CastS{Dst: d, Src: v, Width: width})
	return d
}

// Mux selects a when c is set, b otherwise.
func (b *Builder) Mux(c, x, y Var) Var {
	b.checkWidth(c, 1, "mux cond")
	b.checkWidth(y, b.widths[x], "mux arms")
	d := b.fresh(b.widths[x])
	b.emit(Mux{Dst: d, Cond: c, A: x, B: y})
	return d
}

// TrapIf faults the instruction when the 1-bit condition is set.
func (b *Builder) TrapIf(c Var, reason string) {
	b.checkWidth(c, 1, "trapif")
	b.emit(TrapIf{Cond: c, Reason: reason})
}

// Trap faults unconditionally.
func (b *Builder) Trap(reason string) { b.emit(Trap{Reason: reason}) }

// LoadBytes emits a little-endian load of size bits (8/16/32) at the
// 32-bit linear address.
func (b *Builder) LoadBytes(size int, addr Var) Var {
	b.checkWidth(addr, 32, "load address")
	nbytes := size / 8
	if size%8 != 0 || nbytes < 1 || nbytes > 4 {
		panic(fmt.Sprintf("rtl: bad load size %d", size))
	}
	var acc Var
	for i := 0; i < nbytes; i++ {
		a := addr
		if i > 0 {
			a = b.Arith(Add, addr, b.ImmU(32, uint64(i)))
		}
		byteVar := b.fresh(8)
		b.emit(LoadMem{Dst: byteVar, Addr: a})
		wide := b.CastU(size, byteVar)
		if i == 0 {
			acc = wide
		} else {
			shifted := b.Arith(Shl, wide, b.ImmU(size, uint64(8*i)))
			acc = b.Arith(Or, acc, shifted)
		}
	}
	return acc
}

// StoreBytes emits a little-endian store of v (8/16/32 bits) at the
// 32-bit linear address.
func (b *Builder) StoreBytes(addr, v Var) {
	b.checkWidth(addr, 32, "store address")
	size := b.widths[v]
	nbytes := size / 8
	if size%8 != 0 || nbytes < 1 || nbytes > 4 {
		panic(fmt.Sprintf("rtl: bad store size %d", size))
	}
	for i := 0; i < nbytes; i++ {
		a := addr
		if i > 0 {
			a = b.Arith(Add, addr, b.ImmU(32, uint64(i)))
		}
		byteVal := v
		if i > 0 {
			byteVal = b.Arith(ShrU, v, b.ImmU(size, uint64(8*i)))
		}
		byteVal = b.CastU(8, byteVal)
		b.emit(StoreMem{Addr: a, Src: byteVal})
	}
}

// Not computes the 1-bit complement.
func (b *Builder) Not1(v Var) Var {
	return b.Arith(Xor, v, b.ImmU(1, 1))
}

// Bool loads a 1-bit constant.
func (b *Builder) Bool(v bool) Var { return b.Imm(bits.Bool(v)) }

// IsZero tests v == 0.
func (b *Builder) IsZero(v Var) Var {
	return b.Test(Eq, v, b.ImmU(b.widths[v], 0))
}

// MSB extracts the most significant bit of v as a 1-bit vector.
func (b *Builder) MSB(v Var) Var {
	w := b.widths[v]
	sh := b.Arith(ShrU, v, b.ImmU(w, uint64(w-1)))
	return b.CastU(1, sh)
}

// BitAt extracts bit i of v (constant index) as a 1-bit vector.
func (b *Builder) BitAt(v Var, i uint) Var {
	w := b.widths[v]
	sh := b.Arith(ShrU, v, b.ImmU(w, uint64(i)))
	return b.CastU(1, sh)
}

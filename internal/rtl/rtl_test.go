package rtl

import (
	"errors"
	"strings"
	"testing"

	"rocksalt/internal/bits"
)

// testLoc is a minimal location for the tests.
type testLoc struct {
	name  string
	width int
}

func (l testLoc) Width() int     { return l.width }
func (l testLoc) String() string { return l.name }

// testMachine is a minimal rtl.Machine.
type testMachine struct {
	locs map[testLoc]bits.Vec
	mem  map[uint32]byte
}

func newTestMachine() *testMachine {
	return &testMachine{locs: map[testLoc]bits.Vec{}, mem: map[uint32]byte{}}
}

func (m *testMachine) Get(l Loc) bits.Vec {
	v, ok := m.locs[l.(testLoc)]
	if !ok {
		return bits.Zero(l.Width())
	}
	return v
}
func (m *testMachine) Set(l Loc, v bits.Vec)      { m.locs[l.(testLoc)] = v }
func (m *testMachine) LoadByte(a uint32) byte     { return m.mem[a] }
func (m *testMachine) StoreByte(a uint32, b byte) { m.mem[a] = b }

func run(t *testing.T, b *Builder, m Machine, o Oracle) *State {
	t.Helper()
	st := NewState(m, o)
	if err := Exec(b.Take(), st); err != nil {
		t.Fatalf("exec: %v", err)
	}
	return st
}

func TestArithAndLocs(t *testing.T) {
	m := newTestMachine()
	r := testLoc{"r0", 32}
	b := NewBuilder()
	x := b.ImmU(32, 7)
	y := b.ImmU(32, 5)
	b.Set(r, b.Arith(Add, x, y))
	run(t, b, m, nil)
	if got := m.Get(r).Uint64(); got != 12 {
		t.Fatalf("r0 = %d, want 12", got)
	}
}

func TestAllArithOps(t *testing.T) {
	cases := []struct {
		op   ArithOp
		a, b uint64
		want uint64
	}{
		{Add, 3, 4, 7}, {Sub, 3, 4, 0xffffffff}, {Mul, 6, 7, 42},
		{MulHiU, 1 << 31, 4, 2}, {DivU, 42, 5, 8}, {RemU, 42, 5, 2},
		{And, 0xf0, 0x3c, 0x30}, {Or, 0xf0, 0x0f, 0xff}, {Xor, 0xff, 0x0f, 0xf0},
		{Shl, 1, 4, 16}, {ShrU, 16, 4, 1}, {ShrS, 0x80000000, 31, 0xffffffff},
		{Rol, 0x80000001, 1, 3}, {Ror, 3, 1, 0x80000001},
	}
	for _, c := range cases {
		b := NewBuilder()
		loc := testLoc{"out", 32}
		b.Set(loc, b.Arith(c.op, b.ImmU(32, c.a), b.ImmU(32, c.b)))
		m := newTestMachine()
		run(t, b, m, nil)
		if got := m.Get(loc).Uint64(); got != c.want {
			t.Errorf("%v(%#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestDivisionTraps(t *testing.T) {
	b := NewBuilder()
	b.Arith(DivU, b.ImmU(32, 1), b.ImmU(32, 0))
	st := NewState(newTestMachine(), nil)
	err := Exec(b.Take(), st)
	var trap *TrapError
	if !errors.As(err, &trap) {
		t.Fatalf("expected trap, got %v", err)
	}
}

func TestTests(t *testing.T) {
	b := NewBuilder()
	lt := testLoc{"lt", 1}
	ltu := testLoc{"ltu", 1}
	eq := testLoc{"eq", 1}
	a := b.ImmU(32, 0xffffffff) // -1 signed
	z := b.ImmU(32, 1)
	b.Set(lt, b.Test(LtS, a, z))
	b.Set(ltu, b.Test(LtU, a, z))
	b.Set(eq, b.Test(Eq, a, a))
	m := newTestMachine()
	run(t, b, m, nil)
	if !m.Get(lt).IsTrue() || m.Get(ltu).IsTrue() || !m.Get(eq).IsTrue() {
		t.Fatal("comparison results wrong")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	b := NewBuilder()
	addr := b.ImmU(32, 0x100)
	b.StoreBytes(addr, b.ImmU(32, 0xdeadbeef))
	loaded := b.LoadBytes(32, addr)
	out := testLoc{"out", 32}
	b.Set(out, loaded)
	m := newTestMachine()
	run(t, b, m, nil)
	if got := m.Get(out).Uint64(); got != 0xdeadbeef {
		t.Fatalf("loaded %#x", got)
	}
	// Little-endian byte order in memory.
	if m.mem[0x100] != 0xef || m.mem[0x103] != 0xde {
		t.Fatal("store is not little-endian")
	}
}

func TestMemory16And8(t *testing.T) {
	b := NewBuilder()
	addr := b.ImmU(32, 0)
	b.StoreBytes(addr, b.ImmU(16, 0xabcd))
	v8 := b.LoadBytes(8, addr)
	v16 := b.LoadBytes(16, addr)
	l8, l16 := testLoc{"a", 8}, testLoc{"b", 16}
	b.Set(l8, v8)
	b.Set(l16, v16)
	m := newTestMachine()
	run(t, b, m, nil)
	if m.Get(l8).Uint64() != 0xcd || m.Get(l16).Uint64() != 0xabcd {
		t.Fatal("sub-word memory access wrong")
	}
}

func TestChooseUsesOracle(t *testing.T) {
	b := NewBuilder()
	out := testLoc{"out", 8}
	b.Set(out, b.Choose(8))
	m := newTestMachine()
	st := NewState(m, &StreamOracle{Bits: []byte{0xff}})
	if err := Exec(b.Take(), st); err != nil {
		t.Fatal(err)
	}
	if got := m.Get(out).Uint64(); got != 0xff {
		t.Fatalf("choose = %#x, want 0xff (all-ones oracle)", got)
	}
	// Zero oracle gives zero.
	b2 := NewBuilder()
	b2.Set(out, b2.Choose(8))
	m2 := newTestMachine()
	run(t, b2, m2, ZeroOracle{})
	if !m2.Get(out).IsZero() {
		t.Fatal("zero oracle must choose zero")
	}
}

func TestMux(t *testing.T) {
	b := NewBuilder()
	out := testLoc{"out", 32}
	c := b.Test(Eq, b.ImmU(8, 1), b.ImmU(8, 1))
	b.Set(out, b.Mux(c, b.ImmU(32, 111), b.ImmU(32, 222)))
	m := newTestMachine()
	run(t, b, m, nil)
	if m.Get(out).Uint64() != 111 {
		t.Fatal("mux picked wrong arm")
	}
}

func TestTrapIf(t *testing.T) {
	b := NewBuilder()
	b.TrapIf(b.Bool(true), "boom")
	err := Exec(b.Take(), NewState(newTestMachine(), nil))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected boom trap, got %v", err)
	}
	b2 := NewBuilder()
	b2.TrapIf(b2.Bool(false), "boom")
	if err := Exec(b2.Take(), NewState(newTestMachine(), nil)); err != nil {
		t.Fatalf("false TrapIf must not trap: %v", err)
	}
}

func TestCasts(t *testing.T) {
	b := NewBuilder()
	sExt := testLoc{"s", 32}
	uExt := testLoc{"u", 32}
	tr := testLoc{"t", 8}
	v := b.ImmU(8, 0x80)
	b.Set(sExt, b.CastS(32, v))
	b.Set(uExt, b.CastU(32, v))
	b.Set(tr, b.CastU(8, b.ImmU(32, 0x1234)))
	m := newTestMachine()
	run(t, b, m, nil)
	if m.Get(sExt).Uint64() != 0xffffff80 || m.Get(uExt).Uint64() != 0x80 || m.Get(tr).Uint64() != 0x34 {
		t.Fatal("casts wrong")
	}
}

func TestReadOfUnsetLocalFails(t *testing.T) {
	st := NewState(newTestMachine(), nil)
	err := Exec([]Instr{Arith{Dst: 0, Op: Add, A: 5, B: 6}}, st)
	if err == nil {
		t.Fatal("reading unset locals must fail")
	}
}

func TestWidthMismatchPanicsInBuilder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-width arith must panic at build time")
		}
	}()
	b := NewBuilder()
	b.Arith(Add, b.ImmU(8, 1), b.ImmU(16, 1))
}

func TestInstrStrings(t *testing.T) {
	b := NewBuilder()
	x := b.ImmU(32, 1)
	y := b.Arith(Add, x, x)
	b.Set(testLoc{"r", 32}, y)
	b.TrapIf(b.Test(Eq, x, y), "t")
	for _, ins := range b.Take() {
		if ins.String() == "" {
			t.Fatal("empty instruction rendering")
		}
	}
}

func TestStreamOracleDeterministic(t *testing.T) {
	o1 := &StreamOracle{Bits: []byte{0xa5, 0x5a}}
	o2 := &StreamOracle{Bits: []byte{0xa5, 0x5a}}
	for i := 0; i < 20; i++ {
		w := i%31 + 1
		if o1.Choose(w) != o2.Choose(w) {
			t.Fatal("stream oracle must be deterministic")
		}
	}
}

// Package rtl implements the paper's RTL (register transfer list) DSL: a
// small RISC-like core language over bit vectors, parameterized by an
// architecture's notion of machine state (Figure 3). x86 instructions are
// given meaning by translation to RTL sequences; the interpreter here is a
// pure step function, with non-determinism expressed through an oracle bit
// stream exactly as in §2.4.
package rtl

import (
	"fmt"

	"rocksalt/internal/bits"
)

// Loc identifies one architecture-defined machine location (a register, a
// flag, the PC, a segment base...). Implementations must be comparable.
type Loc interface {
	// Width returns the location's width in bits.
	Width() int
	String() string
}

// Machine is the architecture-specific state RTL is parameterized by:
// locations plus a byte-addressed memory.
type Machine interface {
	Get(Loc) bits.Vec
	Set(Loc, bits.Vec)
	// LoadByte / StoreByte access linear memory. Addresses are 32 bits.
	LoadByte(addr uint32) byte
	StoreByte(addr uint32, b byte)
}

// Var names an RTL local variable (the countably infinite supply of
// temporaries).
type Var int

// ArithOp is a binary bit-vector operation.
type ArithOp uint8

// Arithmetic and logic operations.
const (
	Add ArithOp = iota
	Sub
	Mul
	MulHiU
	MulHiS
	DivU // traps on zero divisor
	DivS // traps on zero divisor or overflow
	RemU
	RemS
	And
	Or
	Xor
	Shl
	ShrU
	ShrS
	Rol
	Ror
)

var arithNames = [...]string{
	"add", "sub", "mul", "mulhu", "mulhs", "divu", "divs", "remu", "rems",
	"and", "or", "xor", "shl", "shru", "shrs", "rol", "ror",
}

func (o ArithOp) String() string { return arithNames[o] }

// CmpOp is a comparison producing a 1-bit vector.
type CmpOp uint8

// Comparison operations.
const (
	Eq CmpOp = iota
	LtU
	LtS
)

var cmpNames = [...]string{"eq", "ltu", "lts"}

func (o CmpOp) String() string { return cmpNames[o] }

// Instr is one RTL instruction. The set follows Figure 3, extended with
// the Mux and TrapIf forms needed to express conditional data flow and
// faulting behavior without control flow inside a sequence.
type Instr interface {
	exec(st *State) error
	String() string
}

// LoadImm sets a local to an immediate bit vector: x := imm.
type LoadImm struct {
	Dst Var
	Val bits.Vec
}

// Arith is x := y op z.
type Arith struct {
	Dst  Var
	Op   ArithOp
	A, B Var
}

// Test is x := y cmp z, yielding a 1-bit vector.
type Test struct {
	Dst  Var
	Op   CmpOp
	A, B Var
}

// GetLoc is x := load loc.
type GetLoc struct {
	Dst Var
	Loc Loc
}

// SetLoc is store loc x.
type SetLoc struct {
	Loc Loc
	Src Var
}

// LoadMem is x := Mem[a], a single byte load; multi-byte loads are built
// from byte loads by the translator.
type LoadMem struct {
	Dst  Var
	Addr Var // 32-bit linear address
}

// StoreMem is Mem[a] := x, a single byte store.
type StoreMem struct {
	Addr Var
	Src  Var // 8-bit value
}

// Choose is x := choose(width): non-deterministically pick a bit vector,
// resolved by pulling bits from the oracle.
type Choose struct {
	Dst   Var
	Width int
}

// CastU is x := zero-extend-or-truncate(y) to Width.
type CastU struct {
	Dst   Var
	Src   Var
	Width int
}

// CastS is x := sign-extend-or-truncate(y) to Width.
type CastS struct {
	Dst   Var
	Src   Var
	Width int
}

// Mux is x := c ? a : b (c is 1 bit wide).
type Mux struct {
	Dst  Var
	Cond Var
	A, B Var
}

// TrapIf aborts execution of the whole program with a machine trap when
// the 1-bit condition is set. Traps model faults (#DE, #GP, illegal
// instruction) and the policy-relevant "instruction not supported" cases.
type TrapIf struct {
	Cond   Var
	Reason string
}

// Trap aborts unconditionally.
type Trap struct {
	Reason string
}

// TrapError is the error produced when RTL execution traps.
type TrapError struct {
	Reason string
}

func (e *TrapError) Error() string { return "rtl: trap: " + e.Reason }

// Oracle supplies the bits consumed by Choose. Implementations may be
// random (validation) or adversarial (safety proofs consider all oracles).
type Oracle interface {
	// Choose returns an arbitrary bit vector of the given width.
	Choose(width int) bits.Vec
}

// ZeroOracle always chooses zero — the deterministic baseline.
type ZeroOracle struct{}

// Choose returns the zero vector.
func (ZeroOracle) Choose(width int) bits.Vec { return bits.Zero(width) }

// StreamOracle pulls bits from a fixed byte stream, wrapping around; the
// paper's "stream of bits that serves as an oracle".
type StreamOracle struct {
	Bits []byte
	pos  int
}

// Choose consumes width bits from the stream.
func (o *StreamOracle) Choose(width int) bits.Vec {
	if len(o.Bits) == 0 {
		return bits.Zero(width)
	}
	var v uint64
	for i := 0; i < width; i++ {
		byteIdx := (o.pos / 8) % len(o.Bits)
		bit := o.Bits[byteIdx] >> uint(o.pos%8) & 1
		v = v<<1 | uint64(bit)
		o.pos++
	}
	return bits.New(width, v)
}

// State is the RTL machine state: the architecture state, the local
// variables of the sequence being executed, and the oracle.
type State struct {
	M      Machine
	Oracle Oracle
	locals []bits.Vec
	set    []bool
}

// NewState creates an interpreter state over a machine.
func NewState(m Machine, o Oracle) *State {
	if o == nil {
		o = ZeroOracle{}
	}
	return &State{M: m, Oracle: o}
}

// Reset clears the local variables between instruction translations (each
// x86 instruction gets a fresh supply of temporaries).
func (st *State) Reset() {
	st.locals = st.locals[:0]
	st.set = st.set[:0]
}

func (st *State) setVar(v Var, val bits.Vec) {
	for int(v) >= len(st.locals) {
		st.locals = append(st.locals, bits.Vec{})
		st.set = append(st.set, false)
	}
	st.locals[v] = val
	st.set[v] = true
}

func (st *State) getVar(v Var) (bits.Vec, error) {
	if int(v) >= len(st.locals) || !st.set[v] {
		return bits.Vec{}, fmt.Errorf("rtl: read of unset local v%d", int(v))
	}
	return st.locals[v], nil
}

// Exec runs a sequence of RTL instructions against the state. A TrapError
// is returned when the sequence faults; the machine state may be partially
// updated, as on real hardware.
func Exec(prog []Instr, st *State) error {
	for _, ins := range prog {
		if err := ins.exec(st); err != nil {
			return err
		}
	}
	return nil
}

func (i LoadImm) exec(st *State) error {
	st.setVar(i.Dst, i.Val)
	return nil
}

func (i Arith) exec(st *State) error {
	a, err := st.getVar(i.A)
	if err != nil {
		return err
	}
	b, err := st.getVar(i.B)
	if err != nil {
		return err
	}
	var r bits.Vec
	ok := true
	switch i.Op {
	case Add:
		r = a.Add(b)
	case Sub:
		r = a.Sub(b)
	case Mul:
		r = a.Mul(b)
	case MulHiU:
		r = a.MulHighU(b)
	case MulHiS:
		r = a.MulHighS(b)
	case DivU:
		r, ok = a.DivU(b)
	case DivS:
		r, ok = a.DivS(b)
	case RemU:
		r, ok = a.RemU(b)
	case RemS:
		r, ok = a.RemS(b)
	case And:
		r = a.And(b)
	case Or:
		r = a.Or(b)
	case Xor:
		r = a.Xor(b)
	case Shl:
		r = a.Shl(b)
	case ShrU:
		r = a.ShrU(b)
	case ShrS:
		r = a.ShrS(b)
	case Rol:
		r = a.Rol(b)
	case Ror:
		r = a.Ror(b)
	default:
		return fmt.Errorf("rtl: unknown arith op %d", i.Op)
	}
	if !ok {
		return &TrapError{Reason: "#DE division error"}
	}
	st.setVar(i.Dst, r)
	return nil
}

func (i Test) exec(st *State) error {
	a, err := st.getVar(i.A)
	if err != nil {
		return err
	}
	b, err := st.getVar(i.B)
	if err != nil {
		return err
	}
	var r bits.Vec
	switch i.Op {
	case Eq:
		r = a.Eq(b)
	case LtU:
		r = a.LtU(b)
	case LtS:
		r = a.LtS(b)
	default:
		return fmt.Errorf("rtl: unknown cmp op %d", i.Op)
	}
	st.setVar(i.Dst, r)
	return nil
}

func (i GetLoc) exec(st *State) error {
	st.setVar(i.Dst, st.M.Get(i.Loc))
	return nil
}

func (i SetLoc) exec(st *State) error {
	v, err := st.getVar(i.Src)
	if err != nil {
		return err
	}
	if v.Width() != i.Loc.Width() {
		return fmt.Errorf("rtl: width mismatch storing %d bits to %s (%d bits)",
			v.Width(), i.Loc, i.Loc.Width())
	}
	st.M.Set(i.Loc, v)
	return nil
}

func (i LoadMem) exec(st *State) error {
	a, err := st.getVar(i.Addr)
	if err != nil {
		return err
	}
	b := st.M.LoadByte(uint32(a.Uint64()))
	st.setVar(i.Dst, bits.New(8, uint64(b)))
	return nil
}

func (i StoreMem) exec(st *State) error {
	a, err := st.getVar(i.Addr)
	if err != nil {
		return err
	}
	v, err := st.getVar(i.Src)
	if err != nil {
		return err
	}
	if v.Width() != 8 {
		return fmt.Errorf("rtl: StoreMem source must be 8 bits, got %d", v.Width())
	}
	st.M.StoreByte(uint32(a.Uint64()), byte(v.Uint64()))
	return nil
}

func (i Choose) exec(st *State) error {
	st.setVar(i.Dst, st.Oracle.Choose(i.Width))
	return nil
}

func (i CastU) exec(st *State) error {
	v, err := st.getVar(i.Src)
	if err != nil {
		return err
	}
	if i.Width >= v.Width() {
		st.setVar(i.Dst, v.ZeroExtend(i.Width))
	} else {
		st.setVar(i.Dst, v.Truncate(i.Width))
	}
	return nil
}

func (i CastS) exec(st *State) error {
	v, err := st.getVar(i.Src)
	if err != nil {
		return err
	}
	if i.Width >= v.Width() {
		st.setVar(i.Dst, v.SignExtend(i.Width))
	} else {
		st.setVar(i.Dst, v.Truncate(i.Width))
	}
	return nil
}

func (i Mux) exec(st *State) error {
	c, err := st.getVar(i.Cond)
	if err != nil {
		return err
	}
	a, err := st.getVar(i.A)
	if err != nil {
		return err
	}
	b, err := st.getVar(i.B)
	if err != nil {
		return err
	}
	if c.Width() != 1 {
		return fmt.Errorf("rtl: Mux condition must be 1 bit")
	}
	if a.Width() != b.Width() {
		return fmt.Errorf("rtl: Mux arms differ in width")
	}
	if c.IsTrue() {
		st.setVar(i.Dst, a)
	} else {
		st.setVar(i.Dst, b)
	}
	return nil
}

func (i TrapIf) exec(st *State) error {
	c, err := st.getVar(i.Cond)
	if err != nil {
		return err
	}
	if c.IsTrue() {
		return &TrapError{Reason: i.Reason}
	}
	return nil
}

func (i Trap) exec(st *State) error {
	return &TrapError{Reason: i.Reason}
}

func (i LoadImm) String() string { return fmt.Sprintf("v%d := %v", i.Dst, i.Val) }
func (i Arith) String() string   { return fmt.Sprintf("v%d := v%d %s v%d", i.Dst, i.A, i.Op, i.B) }
func (i Test) String() string    { return fmt.Sprintf("v%d := v%d %s v%d", i.Dst, i.A, i.Op, i.B) }
func (i GetLoc) String() string  { return fmt.Sprintf("v%d := load %s", i.Dst, i.Loc) }
func (i SetLoc) String() string  { return fmt.Sprintf("store %s, v%d", i.Loc, i.Src) }
func (i LoadMem) String() string { return fmt.Sprintf("v%d := Mem[v%d]", i.Dst, i.Addr) }
func (i StoreMem) String() string {
	return fmt.Sprintf("Mem[v%d] := v%d", i.Addr, i.Src)
}
func (i Choose) String() string { return fmt.Sprintf("v%d := choose %d", i.Dst, i.Width) }
func (i CastU) String() string  { return fmt.Sprintf("v%d := castu%d v%d", i.Dst, i.Width, i.Src) }
func (i CastS) String() string  { return fmt.Sprintf("v%d := casts%d v%d", i.Dst, i.Width, i.Src) }
func (i Mux) String() string {
	return fmt.Sprintf("v%d := v%d ? v%d : v%d", i.Dst, i.Cond, i.A, i.B)
}
func (i TrapIf) String() string { return fmt.Sprintf("trapif v%d, %q", i.Cond, i.Reason) }
func (i Trap) String() string   { return fmt.Sprintf("trap %q", i.Reason) }

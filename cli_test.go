package rocksalt_test

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline exercises the tool chain end to end: generate a
// compliant binary, generate the DFA table bundle, verify the binary with
// both grammar-compiled and table-loaded checkers, and confirm the unsafe
// corpus is rejected — all through the real executables.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binaries")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }

	for _, tool := range []string{"rocksalt", "naclgen", "dfagen", "x86sim"} {
		out, err := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	img := filepath.Join(dir, "img.bin")
	if out, err := exec.Command(bin("naclgen"), "-n", "300", "-o", img).CombinedOutput(); err != nil {
		t.Fatalf("naclgen: %v\n%s", err, out)
	}

	tables := filepath.Join(dir, "tables.bin")
	if out, err := exec.Command(bin("dfagen"), "-o", tables).CombinedOutput(); err != nil {
		t.Fatalf("dfagen: %v\n%s", err, out)
	}

	out, err := exec.Command(bin("rocksalt"), img).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "SAFE") {
		t.Fatalf("rocksalt (grammar): %v\n%s", err, out)
	}
	out, err = exec.Command(bin("rocksalt"), "-tables", tables, img).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "SAFE") {
		t.Fatalf("rocksalt (tables): %v\n%s", err, out)
	}

	// Legacy RSLT1 bundles (component DFAs only, fused on load) must
	// still be accepted through the same flag.
	tablesV1 := filepath.Join(dir, "tables_v1.bin")
	if out, err := exec.Command(bin("dfagen"), "-format", "1", "-o", tablesV1).CombinedOutput(); err != nil {
		t.Fatalf("dfagen -format 1: %v\n%s", err, out)
	}
	out, err = exec.Command(bin("rocksalt"), "-tables", tablesV1, img).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "SAFE") {
		t.Fatalf("rocksalt (v1 tables): %v\n%s", err, out)
	}

	// A file that is not a table bundle at all must fail version
	// sniffing with a clear diagnostic, not a decode panic or a verdict.
	notTables := filepath.Join(dir, "not_tables.bin")
	if err := os.WriteFile(notTables, []byte("GARBAGE BYTES HERE"), 0o644); err != nil {
		t.Fatal(err)
	}
	msg0, err := exec.Command(bin("rocksalt"), "-tables", notTables, img).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("rocksalt -tables on garbage: want exit 2, got %v\n%s", err, msg0)
	}
	if !strings.Contains(string(msg0), "unknown table bundle version") {
		t.Errorf("garbage bundle diagnostic missing version message: %q", msg0)
	}

	// Parallel verification must agree with the sequential run.
	for _, j := range []string{"0", "4"} {
		out, err = exec.Command(bin("rocksalt"), "-j", j, img).CombinedOutput()
		if err != nil || !strings.Contains(string(out), "SAFE") {
			t.Fatalf("rocksalt -j %s: %v\n%s", j, err, out)
		}
	}

	// An empty input file is a usage error (exit 2), not a verdict.
	empty := filepath.Join(dir, "empty.bin")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin("rocksalt"), empty)
	msg, err := cmd.CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("rocksalt on empty file: want exit 2, got %v", err)
	}
	if !strings.Contains(string(msg), "empty") {
		t.Errorf("empty-file message not descriptive: %q", msg)
	}

	// x86sim matches rocksalt's behavior on empty input (exit 2, usage
	// error) instead of wrapping the CS limit to 0xffffffff.
	cmd = exec.Command(bin("x86sim"), empty)
	msg, err = cmd.CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("x86sim on empty file: want exit 2, got %v", err)
	}
	if !strings.Contains(string(msg), "empty") {
		t.Errorf("x86sim empty-file message not descriptive: %q", msg)
	}

	// An expired -timeout interrupts verification: exit 3, no verdict,
	// and in particular never SAFE.
	cmd = exec.Command(bin("rocksalt"), "-timeout", "1ns", img)
	msg, err = cmd.CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 3 {
		t.Errorf("rocksalt -timeout 1ns: want exit 3, got %v\n%s", err, msg)
	}
	if strings.Contains(string(msg), "SAFE") || !strings.Contains(string(msg), "INTERRUPTED") {
		t.Errorf("interrupted run output wrong: %q", msg)
	}

	// The unsafe corpus must be rejected with exit status 1.
	unsafeDir := filepath.Join(dir, "unsafe")
	if out, err := exec.Command(bin("naclgen"), "-unsafe", unsafeDir).CombinedOutput(); err != nil {
		t.Fatalf("naclgen -unsafe: %v\n%s", err, out)
	}
	entries, err := os.ReadDir(unsafeDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("unsafe corpus missing: %v", err)
	}
	for _, e := range entries {
		cmd := exec.Command(bin("rocksalt"), "-q", filepath.Join(unsafeDir, e.Name()))
		err := cmd.Run()
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
			t.Errorf("rocksalt on %s: want exit 1, got %v", e.Name(), err)
		}
	}

	// -stats prints the per-run engine record; -json emits the verdict
	// machine-readably with the stats embedded.
	out, err = exec.Command(bin("rocksalt"), "-stats", img).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "lane batches") {
		t.Errorf("rocksalt -stats missing engine record: %v\n%s", err, out)
	}
	out, err = exec.Command(bin("rocksalt"), "-json", img).CombinedOutput()
	if err != nil || !strings.Contains(string(out), `"safe": true`) ||
		!strings.Contains(string(out), `"bytes_scanned"`) {
		t.Errorf("rocksalt -json output wrong: %v\n%s", err, out)
	}

	// -metrics-addr serves Prometheus metrics, expvar and pprof for the
	// life of the process; -linger keeps a one-shot run scrapable.
	srv := exec.Command(bin("rocksalt"), "-metrics-addr", "127.0.0.1:0", "-linger", "30s", "-q", img)
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if i := strings.Index(sc.Text(), "addr="); i >= 0 {
			addr = strings.Fields(sc.Text()[i+len("addr="):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatal("rocksalt -metrics-addr never logged its address")
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		return string(body)
	}
	if m := get("/metrics"); !strings.Contains(m, "rocksalt_verify_runs_total 1") ||
		!strings.Contains(m, "# TYPE rocksalt_verify_duration_ns histogram") {
		t.Errorf("/metrics exposition missing run counters:\n%.800s", m)
	}
	if v := get("/debug/vars"); !strings.Contains(v, `"rocksalt"`) {
		t.Errorf("/debug/vars missing the rocksalt expvar:\n%.400s", v)
	}
	if p := get("/debug/pprof/cmdline"); !strings.Contains(p, "rocksalt") {
		t.Errorf("/debug/pprof/cmdline wrong:\n%q", p)
	}

	// A tampered image: flip a byte of the compliant image's first
	// instruction and require rejection with the structured diagnostic
	// (kind + offset + byte window) on the non-quiet path.
	data, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 0xc3
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(bin("rocksalt"), "-q", bad).Run(); err == nil {
		t.Error("tampered image must be rejected")
	}
	diag, err := exec.Command(bin("rocksalt"), bad).CombinedOutput()
	if err == nil {
		t.Error("tampered image must be rejected on the diagnostic path")
	}
	for _, want := range []string{"REJECTED", "offset", "bytes at"} {
		if !strings.Contains(string(diag), want) {
			t.Errorf("diagnostic output missing %q:\n%s", want, diag)
		}
	}
}

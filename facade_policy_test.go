package rocksalt_test

import (
	"testing"

	"rocksalt"
	"rocksalt/internal/nacl"
	"rocksalt/internal/policy"
)

// TestCompilePolicyEndToEnd exercises the public policy-compiler
// surface on the two shipped non-default policies: each verifies its
// own generated corpus and rejects images that are compliant only
// under a different policy — the wrong-mask pair for NaCl-16, and the
// imm8 pair, a string instruction and a guard-region jump for REINS.
func TestCompilePolicyEndToEnd(t *testing.T) {
	bundlePad := func(bundle int, code ...byte) []byte {
		out := append([]byte{}, code...)
		for len(out)%bundle != 0 {
			out = append(out, 0x90)
		}
		return out
	}

	t.Run("nacl-16", func(t *testing.T) {
		chk, err := rocksalt.CompilePolicy(policy.NaCl16())
		if err != nil {
			t.Fatal(err)
		}
		com, err := policy.Compile(policy.NaCl16())
		if err != nil {
			t.Fatal(err)
		}
		prof, err := nacl.ProfileForSpec(com.Spec)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 3; seed++ {
			img, err := nacl.NewGeneratorFor(100+seed, prof, com.SafeGrammar).Random(500)
			if err != nil {
				t.Fatal(err)
			}
			if ok, verr := chk.VerifyReport(img); !ok {
				t.Fatalf("seed %d: compliant nacl-16 image rejected: %v", seed, verr)
			}
		}
		// The nacl-32 pair masks with 0xe0, which only guarantees 32-byte
		// alignment: under the 16-byte policy the AND parses as an
		// ordinary safe instruction and the bare JMP behind it is illegal.
		if chk.Verify(bundlePad(16, 0x83, 0xe0, 0xe0, 0xff, 0xe0)) {
			t.Fatal("nacl-16 accepted a 0xe0-masked pair")
		}
		// Its own 0xf0 pair is of course fine.
		if !chk.Verify(bundlePad(16, 0x83, 0xe0, 0xf0, 0xff, 0xe0)) {
			t.Fatal("nacl-16 rejected its own masked pair")
		}
		// And the straddle rule now bites at 16, not 32: an 8-byte unit
		// crossing offset 16 is a violation.
		straddler := append(bundlePad(16, 0x90)[:12], 0xb8, 1, 2, 3, 4, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90)
		if chk.Verify(straddler) {
			t.Fatal("nacl-16 accepted an instruction straddling a 16-byte boundary")
		}
	})

	t.Run("reins-16", func(t *testing.T) {
		chk, err := rocksalt.CompilePolicy(policy.REINS())
		if err != nil {
			t.Fatal(err)
		}
		com, err := policy.Compile(policy.REINS())
		if err != nil {
			t.Fatal(err)
		}
		prof, err := nacl.ProfileForSpec(com.Spec)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 3; seed++ {
			img, err := nacl.NewGeneratorFor(200+seed, prof, com.SafeGrammar).Random(500)
			if err != nil {
				t.Fatal(err)
			}
			if ok, verr := chk.VerifyReport(img); !ok {
				t.Fatalf("seed %d: compliant reins image rejected: %v", seed, verr)
			}
		}
		// REINS masks with a 32-bit immediate; the NaCl imm8 pair does
		// not match its pair grammar, leaving a bare indirect jump.
		if chk.Verify(bundlePad(16, 0x83, 0xe0, 0xf0, 0xff, 0xe0)) {
			t.Fatal("reins accepted an imm8-masked pair")
		}
		// Its own imm32 pair (AND eax, 0x0ffffff0; JMP eax) is fine.
		if !chk.Verify(bundlePad(16, 0x81, 0xe0, 0xf0, 0xff, 0xff, 0x0f, 0xff, 0xe0)) {
			t.Fatal("reins rejected its own masked pair")
		}
		// String operations are banned by the spec: MOVS is an illegal
		// instruction under REINS but safe under NaCl.
		movs := bundlePad(16, 0xa4)
		if chk.Verify(movs) {
			t.Fatal("reins accepted a banned string instruction")
		}
		def, err := rocksalt.NewChecker()
		if err != nil {
			t.Fatal(err)
		}
		if !def.Verify(bundlePad(32, 0xa4)) {
			t.Fatal("default policy rejected MOVS; the banned-class test is vacuous")
		}
		// Out-of-image targets inside the guard region are rejected even
		// when whitelisted as entry points; above the cutoff the
		// whitelist works as usual.
		low, high := uint32(0x8000), uint32(0x20000) // below and above the 64 KiB cutoff
		jmpOut := func(target uint32) []byte {
			rel := target - 5 // e9 at offset 0, next instruction at 5
			return bundlePad(16, 0xe9, byte(rel), byte(rel>>8), byte(rel>>16), byte(rel>>24))
		}
		chk.Entries = map[uint32]bool{low: true, high: true}
		if chk.Verify(jmpOut(low)) {
			t.Fatal("reins accepted a direct jump into the guard region")
		}
		if ok, verr := chk.VerifyReport(jmpOut(high)); !ok {
			t.Fatalf("reins rejected a whitelisted above-guard entry: %v", verr)
		}
	})
}

// TestParsePolicySpecFacade pins the public JSON entry point, including
// the error paths the CLI's exit code 2 rests on.
func TestParsePolicySpecFacade(t *testing.T) {
	spec, err := rocksalt.ParsePolicySpec([]byte(`{"name":"tiny","bundle_size":64,"aligned_calls":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "tiny" || spec.BundleSize != 64 || !spec.AlignedCalls {
		t.Fatalf("parsed spec: %+v", spec)
	}
	chk, err := rocksalt.CompilePolicy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if info := chk.PolicyInfo(); info.BundleSize != 64 {
		t.Fatalf("compiled policy info: %+v", info)
	}
	for _, bad := range []string{
		`{"bundle_size":24}`, // not a power of two
		`{"bundle_size":16,"mask_regs":["ebx"],"scratch_regs":["ebx"]}`, // contradictory
		`{"bundle_size":16,"frobnicate":1}`,                             // unknown field
		`not json`,
	} {
		if _, err := rocksalt.ParsePolicySpec([]byte(bad)); err == nil {
			t.Errorf("spec %s accepted", bad)
		}
	}
}

// TestCompiledPolicyLeanAlloc holds the allocation-free property of the
// lean Verify path on a runtime-compiled non-default policy.
func TestCompiledPolicyLeanAlloc(t *testing.T) {
	chk, err := rocksalt.CompilePolicy(policy.NaCl16())
	if err != nil {
		t.Fatal(err)
	}
	com, err := policy.Compile(policy.NaCl16())
	if err != nil {
		t.Fatal(err)
	}
	prof, err := nacl.ProfileForSpec(com.Spec)
	if err != nil {
		t.Fatal(err)
	}
	img, err := nacl.NewGeneratorFor(300, prof, com.SafeGrammar).Random(2000)
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Verify(img) {
		t.Fatal("benchmark image rejected")
	}
	if allocs := testing.AllocsPerRun(20, func() { chk.Verify(img) }); allocs != 0 {
		t.Fatalf("lean Verify on a compiled policy allocates %.1f times per op", allocs)
	}
}

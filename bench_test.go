package rocksalt

// The benchmark suite: one benchmark per evaluation claim (the E-index in
// DESIGN.md) plus the ablations called out there. Run with
//
//	go test -bench=. -benchmem .
import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"rocksalt/internal/armor"
	"rocksalt/internal/core"
	"rocksalt/internal/grammar"
	"rocksalt/internal/mips"
	"rocksalt/internal/nacl"
	"rocksalt/internal/ncval"
	"rocksalt/internal/rtl"
	"rocksalt/internal/sim"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/machine"
	"rocksalt/internal/x86/semantics"
)

// Shared fixtures, built lazily so `go test .` without -bench stays fast.
var fixtures struct {
	checker *core.Checker
	big     []byte // ~100k instructions
	bigN    int
	small   []byte // ~300 instructions
	smallN  int
	huge    []byte // ~1M instructions (the E2-sized image)
	hugeN   int
}

func setup(b *testing.B) {
	b.Helper()
	if fixtures.checker != nil {
		return
	}
	c, err := core.NewChecker()
	if err != nil {
		b.Fatal(err)
	}
	fixtures.checker = c
	fixtures.big, err = nacl.NewGenerator(101).Random(100000)
	if err != nil {
		b.Fatal(err)
	}
	fixtures.bigN = countUnits(c, fixtures.big)
	fixtures.small, err = nacl.NewGenerator(102).Random(300)
	if err != nil {
		b.Fatal(err)
	}
	fixtures.smallN = countUnits(c, fixtures.small)
}

func countUnits(c *core.Checker, img []byte) int {
	valid, _, _ := c.Analyze(img)
	n := 0
	for _, v := range valid {
		if v {
			n++
		}
	}
	return n
}

// BenchmarkRockSaltThroughput is E1: instructions verified per second.
// The paper reports ~1M/s; ns/op divided by the reported instruction
// count gives the per-instruction cost.
func BenchmarkRockSaltThroughput(b *testing.B) {
	setup(b)
	b.SetBytes(int64(len(fixtures.big)))
	b.ReportMetric(float64(fixtures.bigN), "instructions")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !fixtures.checker.Verify(fixtures.big) {
			b.Fatal("rejected")
		}
	}
}

// BenchmarkEngineAblation isolates the tentpole speedup: the same
// sequential verification with the fused product automaton (lane engine
// plus scalar fused fallback) versus the reference three-DFA Figure-5
// loop. Both engines produce byte-identical reports (FuzzFusedEquiv);
// the ratio is the fused hot path's payoff alone, free of the
// cross-process noise that plagues absolute MB/s on shared hardware.
func BenchmarkEngineAblation(b *testing.B) {
	setup(b)
	for _, e := range []struct {
		name   string
		engine core.EngineKind
	}{
		{"fused", core.EngineFused},
		{"reference", core.EngineReference},
	} {
		b.Run(e.name, func(b *testing.B) {
			opts := core.VerifyOptions{Workers: 1, Engine: e.engine}
			b.SetBytes(int64(len(fixtures.big)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := fixtures.checker.VerifyWith(fixtures.big, opts); !rep.Safe {
					b.Fatal("rejected")
				}
			}
		})
	}
}

// BenchmarkNewChecker measures checker construction from the embedded
// RSLT2 bundle — the startup cost a process pays before its first
// Verify. The acceptance bar is under a millisecond; compiling the
// grammars from scratch (the pre-bundle path, still available through
// NewCheckerFromGrammars) takes ~170ms.
func BenchmarkNewChecker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.NewChecker(); err != nil {
			b.Fatal(err)
		}
	}
}

// setupHuge lazily builds the E2-sized (~1M instruction) image used by
// the parallel-scaling benchmark; it is expensive, so only benchmarks
// that need it pay for it.
func setupHuge(b *testing.B) {
	b.Helper()
	setup(b)
	if fixtures.huge != nil {
		return
	}
	img, err := nacl.NewGenerator(103).Random(1000000)
	if err != nil {
		b.Fatal(err)
	}
	fixtures.huge = img
	fixtures.hugeN = countUnits(fixtures.checker, img)
}

// BenchmarkRockSaltThroughputParallel is the scaling companion to E1:
// the staged engine at 1/2/4/GOMAXPROCS stage-1 workers on the E2-sized
// image. MB/s comes from b.SetBytes; the speedup over workers-1 is the
// sharding payoff (bounded by physical core count).
func BenchmarkRockSaltThroughputParallel(b *testing.B) {
	setupHuge(b)
	workerSet := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerSet = append(workerSet, n)
	}
	for _, w := range workerSet {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			opts := core.VerifyOptions{Workers: w}
			b.SetBytes(int64(len(fixtures.huge)))
			b.ReportMetric(float64(fixtures.hugeN), "instructions")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := fixtures.checker.VerifyWith(fixtures.huge, opts); !rep.Safe {
					b.Fatal("rejected")
				}
			}
		})
	}
}

// BenchmarkCheckerComparison is E2: RockSalt vs the Google-style
// hand-written validator on the same large image.
func BenchmarkCheckerComparison(b *testing.B) {
	setup(b)
	b.Run("rocksalt", func(b *testing.B) {
		b.SetBytes(int64(len(fixtures.big)))
		for i := 0; i < b.N; i++ {
			if !fixtures.checker.Verify(fixtures.big) {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("ncval", func(b *testing.B) {
		b.SetBytes(int64(len(fixtures.big)))
		for i := 0; i < b.N; i++ {
			if !ncval.Validate(fixtures.big) {
				b.Fatal("rejected")
			}
		}
	})
}

// BenchmarkArmorStyleVerifier is E3: the theorem-prover-style verifier on
// a 300-instruction program (the paper's Zhao-et-al comparison point).
func BenchmarkArmorStyleVerifier(b *testing.B) {
	setup(b)
	b.Run("armor", func(b *testing.B) {
		b.ReportMetric(float64(fixtures.smallN), "instructions")
		for i := 0; i < b.N; i++ {
			if !armor.Verify(fixtures.small) {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("rocksalt", func(b *testing.B) {
		b.ReportMetric(float64(fixtures.smallN), "instructions")
		for i := 0; i < b.N; i++ {
			if !fixtures.checker.Verify(fixtures.small) {
				b.Fatal("rejected")
			}
		}
	})
}

// BenchmarkDFAGeneration is E4 and the bit-vs-byte ablation: compiling
// the three policy grammars to byte DFAs, and the MaskedJump grammar at
// both granularities.
func BenchmarkDFAGeneration(b *testing.B) {
	b.Run("policy-byte-dfas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := grammar.NewCtx()
			for _, g := range []*grammar.Grammar{
				core.MaskedJumpGrammar(), core.NoControlFlowGrammar(), core.DirectJumpGrammar(),
			} {
				if _, err := ctx.CompileDFA(ctx.Strip(g), 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("maskedjump-bit-dfa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := grammar.NewCtx()
			if _, err := ctx.CompileBitDFA(ctx.Strip(core.MaskedJumpGrammar()), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMatchDFAvsDerivatives is the core speed ablation: matching one
// masked-jump pair with the compiled DFA versus raw grammar derivatives.
func BenchmarkMatchDFAvsDerivatives(b *testing.B) {
	pair := []byte{0x83, 0xe1, 0xe0, 0xff, 0xe1}
	setup(b)
	img := append(append([]byte{}, pair...), make([]byte, 27)...)
	for i := 5; i < 32; i++ {
		img[i] = 0x90
	}
	b.Run("dfa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !fixtures.checker.Verify(img) {
				b.Fatal("rejected")
			}
		}
	})
	g := core.MaskedJumpGrammar()
	b.Run("derivatives", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := grammar.ParseBytes(g, pair, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatorThroughput is the E5 support measurement: modeled
// instructions executed per second by the decode→RTL→interpret pipeline,
// with and without the translation cache (an engineering ablation; the
// uncached path is the paper's extracted-simulator cost profile).
func BenchmarkSimulatorThroughput(b *testing.B) {
	// Tight arithmetic loop: 5 instructions per iteration.
	code := []byte{
		0x31, 0xc0, // xor eax, eax
		0xb9, 0xff, 0xff, 0xff, 0x7f, // mov ecx, 0x7fffffff
		0x01, 0xc8, // L: add eax, ecx
		0x31, 0xc8, // xor eax, ecx
		0x41,       // inc ecx
		0xe2, 0xf9, // loop L
	}
	mkSim := func(cache bool) *sim.Simulator {
		st := machine.New()
		st.SegBase[x86.CS] = 0
		st.SegLimit[x86.CS] = uint32(len(code) - 1)
		st.Mem.WriteBytes(0, code)
		s := sim.New(st)
		s.CacheTranslations = cache
		if _, err := s.Run(3); err != nil {
			b.Fatal(err)
		}
		return s
	}
	for _, cache := range []bool{true, false} {
		name := "cached"
		if !cache {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			s := mkSim(cache)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecode measures the decoder alone (cached opcodes, varying
// immediates).
func BenchmarkDecode(b *testing.B) {
	d := decode.NewDecoder()
	insts := [][]byte{
		{0x90},
		{0x01, 0xd8},
		{0x8b, 0x44, 0x8a, 0x04},
		{0xb8, 0x78, 0x56, 0x34, 0x12},
		{0x0f, 0xaf, 0xc3},
		{0x83, 0xe0, 0xe0},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Decode(insts[i%len(insts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslate measures x86→RTL compilation.
func BenchmarkTranslate(b *testing.B) {
	inst := x86.Inst{Op: x86.ADD, W: true,
		Args: []x86.Operand{x86.RegOp{Reg: x86.EAX}, x86.RegOp{Reg: x86.EBX}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := semantics.Translate(inst, 0, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTLExec measures the interpreter on a pre-translated term.
func BenchmarkRTLExec(b *testing.B) {
	inst := x86.Inst{Op: x86.ADD, W: true,
		Args: []x86.Operand{x86.RegOp{Reg: x86.EAX}, x86.RegOp{Reg: x86.EBX}}}
	prog, err := semantics.Translate(inst, 0, 2)
	if err != nil {
		b.Fatal(err)
	}
	st := machine.New()
	rst := rtl.NewState(st, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rst.Reset()
		if err := rtl.Exec(prog, rst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrammarAmbiguityCheck is E8's reflection procedure over the
// full instruction grammar.
func BenchmarkGrammarAmbiguityCheck(b *testing.B) {
	top := decode.TopGrammar()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := grammar.NewCtx()
		if err := grammar.CheckUnambiguous(ctx, top); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerator measures the NaCl toolchain substitute.
func BenchmarkGenerator(b *testing.B) {
	gen := nacl.NewGenerator(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Random(100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampler measures generative fuzzing throughput (E5 support).
func BenchmarkSampler(b *testing.B) {
	s := grammar.NewSampler(rand.New(rand.NewSource(1)))
	top := decode.TopGrammar()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := s.SampleBytes(top, 4); !ok {
			b.Fatal("sample failed")
		}
	}
}

// BenchmarkMipsSimulator exercises the reused DSLs on the second
// architecture.
func BenchmarkMipsSimulator(b *testing.B) {
	s := mips.NewState()
	s.StoreWord(0, mips.Assemble(mips.Inst{Op: mips.ADDIU, RS: 8, RT: 8, Imm: 1}))
	s.StoreWord(4, mips.Assemble(mips.Inst{Op: mips.BEQ, RS: 0, RT: 0, Imm: 0xfffd})) // loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
